//! Deterministic fan-out over OS threads.
//!
//! The paper's methodology is an embarrassingly parallel grid (families
//! × configurations × queries), and everything in this workspace is
//! immutable while being measured, so parallel execution is safe — the
//! only thing that must be engineered is *determinism*: results are
//! collected by input index, so the output of [`par_map`] is
//! byte-identical at any thread count, including 1.
//!
//! Work is distributed dynamically (an atomic cursor over the input),
//! because grid cells vary by orders of magnitude in cost — a timed-out
//! query costs the whole timeout budget while its neighbour finishes in
//! microseconds — and static chunking would leave threads idle.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a parallel region may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Exactly `threads` workers; `0` means "all available cores".
    pub fn new(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(t) => Parallelism { threads: t },
            None => Parallelism::available(),
        }
    }

    /// Single-threaded execution (the in-place fallback).
    pub fn sequential() -> Self {
        Parallelism {
            threads: NonZeroUsize::MIN,
        }
    }

    /// One worker per available hardware thread.
    pub fn available() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// One job's captured panic, as returned by [`par_map_catch`]. Carries
/// the original payload (so [`par_map`] can re-raise it faithfully)
/// plus a best-effort rendering for error reports.
pub struct JobPanic {
    /// The panic message, if the payload was a string (the common
    /// case: `panic!`, `expect`, injected faults).
    pub message: String,
    payload: Box<dyn std::any::Any + Send>,
}

impl JobPanic {
    fn new(payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        JobPanic { message, payload }
    }

    /// Re-raise the original panic on the calling thread.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPanic")
            .field("message", &self.message)
            .finish()
    }
}

/// Map `f` over `items` on up to `par.threads()` threads, returning the
/// results *in input order* regardless of completion order. `f` must be
/// pure for the output to be deterministic; every caller in this
/// workspace satisfies that (sessions are read-only views).
///
/// A panicking job re-raises its panic here after every other job has
/// finished — one poisoned item cannot silently discard its siblings'
/// work (callers that want the per-job verdicts use [`par_map_catch`]).
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in par_map_catch(par, items, f) {
        match r {
            Ok(v) => out.push(v),
            Err(p) => p.resume(),
        }
    }
    out
}

/// [`par_map`] with per-job panic isolation: each job runs under
/// `catch_unwind`, so a panicking item yields `Err(JobPanic)` in its
/// input-order slot while every other job completes normally. This is
/// the primitive the fault-injection layer's "poisoned cell" rides on:
/// an injected panic fails one grid cell, not the process.
pub fn par_map_catch<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<Result<U, JobPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    // AssertUnwindSafe: `f` is `Fn` over immutable borrows and a
    // panicked job's partial state is discarded wholesale, so no
    // broken invariant can leak back to the caller.
    let call = |item: &T| -> Result<U, JobPanic> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(JobPanic::new)
    };
    let workers = par.threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(call).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<U, JobPanic>)> = Vec::with_capacity(items.len());
    let sink = Mutex::new(&mut indexed);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Batch locally so the sink lock is touched rarely.
                let mut local: Vec<(usize, Result<U, JobPanic>)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, call(&items[i])));
                }
                // Job panics are caught above, so the only way this
                // lock poisons is a panic in `Vec::extend` itself.
                sink.lock().expect("result sink poisoned").extend(local);
            });
        }
    });
    // Completion order is nondeterministic; input order is restored here.
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// A one-shot job for [`par_run`].
pub type Job<'a, U> = Box<dyn FnOnce() -> U + Send + 'a>;

/// Run independent jobs concurrently (up to `par.threads()` at a time),
/// returning their results in job order. Used for coarse-grained
/// fan-out such as building several databases at once.
pub fn par_run<U: Send>(par: Parallelism, jobs: Vec<Job<'_, U>>) -> Vec<U> {
    let mut out = Vec::with_capacity(jobs.len());
    for r in par_run_catch(par, jobs) {
        match r {
            Ok(v) => out.push(v),
            Err(p) => p.resume(),
        }
    }
    out
}

/// [`par_run`] with per-job panic isolation (see [`par_map_catch`]):
/// a panicking job yields `Err(JobPanic)` in its slot while the
/// remaining jobs run to completion.
pub fn par_run_catch<U: Send>(par: Parallelism, jobs: Vec<Job<'_, U>>) -> Vec<Result<U, JobPanic>> {
    let slots: Vec<Mutex<Option<Job<'_, U>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    par_map_catch(par, &slots, |slot| {
        let job = slot
            .lock()
            .expect("job mutex poisoned")
            .take()
            .expect("each job runs exactly once");
        job()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let got = par_map(Parallelism::new(threads), &items, |x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Parallelism::new(4), &empty, |x| *x).is_empty());
        assert_eq!(par_map(Parallelism::new(4), &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn unbalanced_work_still_ordered() {
        // Front-loaded heavy items exercise the dynamic cursor.
        let items: Vec<u64> = (0..64).rev().collect();
        let got = par_map(Parallelism::new(4), &items, |x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (acc, *x).1
        });
        assert_eq!(got, items);
    }

    #[test]
    fn par_run_returns_in_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = par_run(Parallelism::new(3), jobs);
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn par_map_catch_isolates_panicking_jobs() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [1, 4] {
            let got = par_map_catch(Parallelism::new(threads), &items, |&x| {
                if x % 10 == 3 {
                    panic!("poisoned item {x}");
                }
                x * 2
            });
            assert_eq!(got.len(), items.len(), "threads={threads}");
            for (i, r) in got.iter().enumerate() {
                if i % 10 == 3 {
                    let p = r.as_ref().expect_err("poisoned slot");
                    assert_eq!(p.message, format!("poisoned item {i}"));
                } else {
                    assert_eq!(*r.as_ref().expect("healthy slot"), i as u32 * 2);
                }
            }
        }
    }

    #[test]
    fn par_map_reraises_job_panics() {
        let items: Vec<u32> = (0..8).collect();
        let err = std::panic::catch_unwind(|| {
            par_map(Parallelism::new(4), &items, |&x| {
                if x == 5 {
                    panic!("boom {x}");
                }
                x
            })
        })
        .expect_err("panic propagates");
        assert_eq!(
            err.downcast_ref::<String>().map(String::as_str),
            Some("boom 5")
        );
    }

    #[test]
    fn par_run_catch_isolates_and_orders() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("job {i} died");
                    }
                    i * 10
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let got = par_run_catch(Parallelism::new(3), jobs);
        assert_eq!(got.len(), 6);
        for (i, r) in got.iter().enumerate() {
            match r {
                Ok(v) => assert_eq!(*v, i * 10),
                Err(p) => {
                    assert_eq!(i, 2);
                    assert_eq!(p.message, "job 2 died");
                }
            }
        }
    }

    #[test]
    fn zero_threads_means_available() {
        assert!(Parallelism::new(0).threads() >= 1);
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert_eq!(Parallelism::new(3).threads(), 3);
    }
}
