//! Deterministic fan-out over OS threads.
//!
//! The paper's methodology is an embarrassingly parallel grid (families
//! × configurations × queries), and everything in this workspace is
//! immutable while being measured, so parallel execution is safe — the
//! only thing that must be engineered is *determinism*: results are
//! collected by input index, so the output of [`par_map`] is
//! byte-identical at any thread count, including 1.
//!
//! Work is distributed dynamically (an atomic cursor over the input),
//! because grid cells vary by orders of magnitude in cost — a timed-out
//! query costs the whole timeout budget while its neighbour finishes in
//! microseconds — and static chunking would leave threads idle.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads a parallel region may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Exactly `threads` workers; `0` means "all available cores".
    pub fn new(threads: usize) -> Self {
        match NonZeroUsize::new(threads) {
            Some(t) => Parallelism { threads: t },
            None => Parallelism::available(),
        }
    }

    /// Single-threaded execution (the in-place fallback).
    pub fn sequential() -> Self {
        Parallelism {
            threads: NonZeroUsize::MIN,
        }
    }

    /// One worker per available hardware thread.
    pub fn available() -> Self {
        Parallelism {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::available()
    }
}

/// Map `f` over `items` on up to `par.threads()` threads, returning the
/// results *in input order* regardless of completion order. `f` must be
/// pure for the output to be deterministic; every caller in this
/// workspace satisfies that (sessions are read-only views).
pub fn par_map<T, U, F>(par: Parallelism, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = par.threads().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, U)> = Vec::with_capacity(items.len());
    let sink = Mutex::new(&mut indexed);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Batch locally so the sink lock is touched rarely.
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                sink.lock().expect("worker panicked").extend(local);
            });
        }
    });
    // Completion order is nondeterministic; input order is restored here.
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, v)| v).collect()
}

/// A one-shot job for [`par_run`].
pub type Job<'a, U> = Box<dyn FnOnce() -> U + Send + 'a>;

/// Run independent jobs concurrently (up to `par.threads()` at a time),
/// returning their results in job order. Used for coarse-grained
/// fan-out such as building several databases at once.
pub fn par_run<U: Send>(par: Parallelism, jobs: Vec<Job<'_, U>>) -> Vec<U> {
    let slots: Vec<Mutex<Option<Job<'_, U>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    par_map(par, &slots, |slot| {
        let job = slot
            .lock()
            .expect("job mutex poisoned")
            .take()
            .expect("each job runs exactly once");
        job()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 8] {
            let got = par_map(Parallelism::new(threads), &items, |x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(Parallelism::new(4), &empty, |x| *x).is_empty());
        assert_eq!(par_map(Parallelism::new(4), &[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn unbalanced_work_still_ordered() {
        // Front-loaded heavy items exercise the dynamic cursor.
        let items: Vec<u64> = (0..64).rev().collect();
        let got = par_map(Parallelism::new(4), &items, |x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (acc, *x).1
        });
        assert_eq!(got, items);
    }

    #[test]
    fn par_run_returns_in_job_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = par_run(Parallelism::new(3), jobs);
        assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn zero_threads_means_available() {
        assert!(Parallelism::new(0).threads() >= 1);
        assert_eq!(Parallelism::sequential().threads(), 1);
        assert_eq!(Parallelism::new(3).threads(), 3);
    }
}
