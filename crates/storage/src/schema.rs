//! Table schemas: columns, types, domains, and key constraints.
//!
//! Domains implement the paper's rule that "joins \[are allowed\] on
//! attributes in the same domain only" (§3.2.2): the query-family
//! generators consult `ColumnDef::domain` when enumerating meaningful
//! join predicates.

use std::fmt;

/// Column data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Str,
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColType::Int => write!(f, "INT"),
            ColType::Float => write!(f, "FLOAT"),
            ColType::Str => write!(f, "TEXT"),
        }
    }
}

/// Definition of one column.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Data type.
    pub ty: ColType,
    /// Semantic domain label; columns sharing a domain may be joined
    /// meaningfully (e.g. all taxon-id columns across NREF tables).
    pub domain: Option<String>,
    /// Whether an index may be built on this column. Mirrors the paper's
    /// "indexable column" restriction (long free-text columns such as
    /// `Protein.sequence` are not indexable).
    pub indexable: bool,
    /// Nominal storage width in bytes, used by the page-count model.
    pub byte_width: u32,
}

impl ColumnDef {
    /// A new indexable column with a width derived from its type.
    pub fn new(name: impl Into<String>, ty: ColType) -> Self {
        let byte_width = match ty {
            ColType::Int | ColType::Float => 8,
            ColType::Str => 24,
        };
        ColumnDef {
            name: name.into(),
            ty,
            domain: None,
            indexable: true,
            byte_width,
        }
    }

    /// Set the semantic domain (builder style).
    pub fn domain(mut self, d: impl Into<String>) -> Self {
        self.domain = Some(d.into());
        self
    }

    /// Mark the column non-indexable (builder style).
    pub fn not_indexable(mut self) -> Self {
        self.indexable = false;
        self
    }

    /// Override the nominal byte width (builder style).
    pub fn width(mut self, w: u32) -> Self {
        self.byte_width = w;
        self
    }
}

/// A foreign-key constraint from this table to another.
///
/// Referenced columns are stored by *name* so a schema can be constructed
/// before the referenced table exists; `Database::validate` resolves them.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    /// Referencing column positions in this table.
    pub columns: Vec<usize>,
    /// Referenced table name.
    pub ref_table: String,
    /// Referenced column names in the referenced table.
    pub ref_columns: Vec<String>,
}

/// Schema of one table.
#[derive(Debug, Clone)]
pub struct TableSchema {
    /// Table name, unique within a database.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Column positions forming the primary key (possibly empty).
    pub primary_key: Vec<usize>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// A new schema with no keys declared.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Declare the primary key by column names (builder style).
    ///
    /// # Panics
    /// Panics if a name does not exist in the schema — schemas are
    /// constructed statically by generators, so this is a programming
    /// error, not a runtime condition.
    pub fn primary_key(mut self, names: &[&str]) -> Self {
        self.primary_key = names.iter().map(|n| self.require_column(n)).collect();
        self
    }

    /// Declare a foreign key by column names (builder style).
    pub fn foreign_key(mut self, cols: &[&str], ref_table: &str, ref_cols: &[&str]) -> Self {
        let columns = cols.iter().map(|n| self.require_column(n)).collect();
        self.foreign_keys.push(ForeignKey {
            columns,
            ref_table: ref_table.to_string(),
            ref_columns: ref_cols.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Position of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Position of a column by name, panicking if absent.
    pub fn require_column(&self, name: &str) -> usize {
        self.column_index(name)
            .unwrap_or_else(|| panic!("no column `{name}` in table `{}`", self.name))
    }

    /// Nominal row width in bytes: column widths plus a per-row header.
    pub fn row_width(&self) -> u32 {
        8 + self.columns.iter().map(|c| c.byte_width).sum::<u32>()
    }

    /// All indexable column positions.
    pub fn indexable_columns(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|&i| self.columns[i].indexable)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::new(
            "protein",
            vec![
                ColumnDef::new("nref_id", ColType::Str).domain("nref_id"),
                ColumnDef::new("p_name", ColType::Str).domain("name"),
                ColumnDef::new("length", ColType::Int),
                ColumnDef::new("sequence", ColType::Str)
                    .not_indexable()
                    .width(400),
            ],
        )
        .primary_key(&["nref_id"])
    }

    #[test]
    fn column_lookup() {
        let s = sample();
        assert_eq!(s.column_index("p_name"), Some(1));
        assert_eq!(s.column_index("missing"), None);
        assert_eq!(s.primary_key, vec![0]);
    }

    #[test]
    fn indexable_excludes_wide_text() {
        let s = sample();
        assert_eq!(s.indexable_columns(), vec![0, 1, 2]);
    }

    #[test]
    fn row_width_sums_columns() {
        let s = sample();
        assert_eq!(s.row_width(), 8 + 24 + 24 + 8 + 400);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn require_missing_panics() {
        sample().require_column("nope");
    }
}
