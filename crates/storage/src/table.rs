//! Heap tables: an append-only row store with page accounting.
//!
//! Rows live in memory, but every table carries a *page model* — a fixed
//! page size divided by the schema's nominal row width — so the executor
//! and optimizer can charge I/O-shaped costs exactly as a disk-resident
//! 2005 system would. The paper's elapsed times are dominated by pages
//! touched; the page model is what lets cost units stand in for seconds
//! (see DESIGN.md §1).

use std::sync::Arc;

use crate::schema::TableSchema;
use crate::value::Value;

/// Nominal page size in bytes for the I/O cost model.
pub const PAGE_SIZE: u32 = 8192;

/// A row: one value per schema column.
pub type Row = Box<[Value]>;

/// Identifier of a row within its table (heap position).
pub type RowId = u32;

/// An append-only heap table.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Arc<TableSchema>,
    rows: Vec<Row>,
    rows_per_page: u32,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        let rows_per_page = (PAGE_SIZE / schema.row_width()).max(1);
        Table {
            schema: Arc::new(schema),
            rows: Vec::new(),
            rows_per_page,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<TableSchema> {
        Arc::clone(&self.schema)
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the schema; rows are produced
    /// by in-repo generators, so a mismatch is a programming error.
    pub fn insert(&mut self, row: impl Into<Row>) -> RowId {
        let row = row.into();
        assert_eq!(
            row.len(),
            self.schema.columns.len(),
            "row arity mismatch for table `{}`",
            self.schema.name
        );
        let id = self.rows.len() as RowId;
        self.rows.push(row);
        id
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Heap size in pages under the page model.
    pub fn n_pages(&self) -> u64 {
        (self.rows.len() as u64)
            .div_ceil(self.rows_per_page as u64)
            .max(1)
    }

    /// Rows that fit in one page for this schema.
    pub fn rows_per_page(&self) -> u32 {
        self.rows_per_page
    }

    /// Nominal byte size of the heap.
    pub fn n_bytes(&self) -> u64 {
        self.n_pages() * PAGE_SIZE as u64
    }

    /// Fetch a row by id.
    #[inline]
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id as usize]
    }

    /// Borrow a single cell without materializing the row.
    ///
    /// This is the late-materialization executor's primary read path:
    /// intermediate tuples hold `RowId`s only, and column values are
    /// fetched through here at predicate/key/projection time.
    #[inline]
    pub fn value(&self, id: RowId, col: usize) -> &Value {
        &self.rows[id as usize][col]
    }

    /// Iterate over `(RowId, &Row)` in heap order.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate().map(|(i, r)| (i as RowId, r))
    }

    /// Heap page number holding a given row.
    pub fn page_of(&self, id: RowId) -> u64 {
        id as u64 / self.rows_per_page as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef};

    fn two_col() -> Table {
        Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("b", ColType::Str),
            ],
        ))
    }

    #[test]
    fn insert_and_fetch() {
        let mut t = two_col();
        let id = t.insert(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.row(id)[0], Value::Int(1));
    }

    #[test]
    fn page_model_counts_pages() {
        let mut t = two_col();
        // row width = 8 (header) + 8 + 24 = 40 bytes -> 204 rows/page.
        assert_eq!(t.rows_per_page(), 8192 / 40);
        for i in 0..500 {
            t.insert(vec![Value::Int(i), Value::str("v")]);
        }
        assert_eq!(t.n_pages(), (500u64).div_ceil(204));
    }

    #[test]
    fn empty_table_occupies_one_page() {
        let t = two_col();
        assert_eq!(t.n_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_panics() {
        two_col().insert(vec![Value::Int(1)]);
    }

    #[test]
    fn page_of_is_monotone() {
        let mut t = two_col();
        for i in 0..1000 {
            t.insert(vec![Value::Int(i), Value::str("v")]);
        }
        assert_eq!(t.page_of(0), 0);
        assert!(t.page_of(999) >= t.page_of(0));
        assert_eq!(t.page_of(203), 0);
        assert_eq!(t.page_of(204), 1);
    }
}
