//! Spill-to-disk pager: materialized heap files plus a spill file for
//! dirty pages evicted from the [`crate::pool::BufferPool`].
//!
//! The pager owns a private scratch directory under the system temp dir
//! (never under the repro's `--out` directory — output directories are
//! snapshotted file-by-file by the determinism and fault tests) and
//! removes it on drop. It holds two kinds of files:
//!
//! * **Heap files** (`<table>.heap`): one per materialized table,
//!   written once via the crash-consistent `.tmp`+rename discipline and
//!   then read page-at-a-time with positioned reads. Pages use the same
//!   fixed-stride layout as the in-memory page model: `rows_per_page`
//!   rows of `row_width` bytes each, so heap file length =
//!   `n_pages() * 8 KiB` exactly.
//! * **The spill file** (`spill.bin`): an append-only page store shared
//!   by every query's temporary relations. Slots are allocated on first
//!   write of a page key and rewritten in place afterwards.
//!
//! Values are encoded fixed-width inside a row's stride: `Int` as 8
//! little-endian bytes, `Float` as its IEEE bits little-endian, `Str`
//! as its first 16 bytes (length-prefixed), `Null` as a `0xFF` marker.
//! The executor never decodes these bytes — row values are always read
//! from the resident `Vec<Row>`; the heap files exist so a capped pool
//! performs *real* positioned reads with real bytes (and real spill
//! writes) whose counts the cost model is calibrated against. Index
//! pages and never-materialized relations read back zero-filled, which
//! leaves the accounting identical. See `DESIGN.md` §13.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::fault::atomic_write;
use crate::pool::{table_rel_id, PageKey};
use crate::table::{Table, PAGE_SIZE};
use crate::value::Value;

/// The spill file's slot table: which page lives at which offset.
#[derive(Default)]
struct SpillState {
    file: Option<File>,
    slots: HashMap<PageKey, u64>,
    next_slot: u64,
}

/// A scratch-directory pager backing a [`crate::pool::BufferPool`].
///
/// Shared (`&Pager`) across a run's queries; heap files are immutable
/// after [`Pager::materialize_table`], and the spill file serializes
/// its slot allocation behind a mutex.
pub struct Pager {
    dir: PathBuf,
    heaps: HashMap<u64, File>,
    spill: Mutex<SpillState>,
}

impl Pager {
    /// Create a pager with a fresh scratch directory
    /// `tab_pool_<pid>_<label>` under the system temp dir.
    pub fn new(label: &str) -> io::Result<Pager> {
        let dir = std::env::temp_dir().join(format!("tab_pool_{}_{label}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(Pager {
            dir,
            heaps: HashMap::new(),
            spill: Mutex::new(SpillState::default()),
        })
    }

    /// Encode `table` into a paged heap file and register it under
    /// [`table_rel_id`]`(name)`. The file is staged at `.tmp` and
    /// renamed into place, then opened for positioned reads.
    pub fn materialize_table(&mut self, name: &str, table: &Table) -> io::Result<()> {
        let n_pages = table.n_pages();
        let mut bytes = vec![0u8; (n_pages * PAGE_SIZE as u64) as usize];
        let stride = table.schema().row_width() as usize;
        let rpp = table.rows_per_page() as usize;
        for (id, row) in table.iter() {
            let page = id as usize / rpp;
            let slot = id as usize % rpp;
            let base = page * PAGE_SIZE as usize + slot * stride;
            encode_row(row, &mut bytes[base..base + stride.min(PAGE_SIZE as usize)]);
        }
        let path = self.dir.join(format!("{name}.heap"));
        atomic_write(&path, &bytes)?;
        self.heaps.insert(table_rel_id(name), File::open(&path)?);
        Ok(())
    }

    /// Read one heap page into `buf` (must be `PAGE_SIZE` bytes).
    /// Returns `false` — and leaves `buf` untouched — if no heap file
    /// is registered for the relation (index or temp pages).
    pub fn read_heap(&self, key: PageKey, buf: &mut [u8]) -> io::Result<bool> {
        let Some(file) = self.heaps.get(&key.rel) else {
            return Ok(false);
        };
        let off = key.page * PAGE_SIZE as u64;
        // A page past EOF (defensive; page counts come from the same
        // model that sized the file) reads as zeros.
        let n = file.read_at(buf, off)?;
        buf[n..].fill(0);
        Ok(true)
    }

    /// Write an evicted dirty page into its spill slot, allocating one
    /// on first write.
    pub fn write_spill(&self, key: PageKey, data: &[u8]) -> io::Result<()> {
        let mut s = self.spill.lock().expect("spill state poisoned");
        if s.file.is_none() {
            s.file = Some(
                OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(self.dir.join("spill.bin"))?,
            );
        }
        let slot = match s.slots.get(&key) {
            Some(&slot) => slot,
            None => {
                let slot = s.next_slot;
                s.next_slot += 1;
                s.slots.insert(key, slot);
                slot
            }
        };
        s.file
            .as_ref()
            .expect("spill file just opened")
            .write_all_at(data, slot * PAGE_SIZE as u64)
    }

    /// Read a previously spilled page back into `buf`. Returns `false`
    /// if the page was never spilled.
    pub fn read_spill(&self, key: PageKey, buf: &mut [u8]) -> io::Result<bool> {
        let s = self.spill.lock().expect("spill state poisoned");
        let Some(&slot) = s.slots.get(&key) else {
            return Ok(false);
        };
        s.file
            .as_ref()
            .expect("slot implies an open spill file")
            .read_exact_at(buf, slot * PAGE_SIZE as u64)?;
        Ok(true)
    }

    /// The scratch directory (for diagnostics/tests).
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Total bytes currently materialized on disk (heap + spill).
    pub fn bytes_on_disk(&self) -> u64 {
        let mut total = 0;
        for f in self.heaps.values() {
            total += f.metadata().map(|m| m.len()).unwrap_or(0);
        }
        let s = self.spill.lock().expect("spill state poisoned");
        total += s.next_slot * PAGE_SIZE as u64;
        total
    }
}

impl Drop for Pager {
    fn drop(&mut self) {
        // Close the heap/spill handles before unlinking the scratch dir.
        self.heaps.clear();
        self.spill.lock().ok().map(|mut s| s.file.take());
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// Fixed-width encoding of one row into its page stride: an 8-byte
/// header (the row's value count), then each value in its column slot.
/// Strings store a 1-byte length and the first 15 bytes of payload.
fn encode_row(row: &[Value], out: &mut [u8]) {
    out[..8].copy_from_slice(&(row.len() as u64).to_le_bytes());
    let mut off = 8;
    for v in row {
        if off + 16 > out.len() {
            break; // stride narrower than the nominal widths — stop clean
        }
        match v {
            Value::Null => out[off] = 0xFF,
            Value::Int(i) => out[off..off + 8].copy_from_slice(&i.to_le_bytes()),
            Value::Float(f) => out[off..off + 8].copy_from_slice(&f.to_bits().to_le_bytes()),
            Value::Str(s) => {
                let b = s.as_bytes();
                let n = b.len().min(15);
                out[off] = n as u8;
                out[off + 1..off + 1 + n].copy_from_slice(&b[..n]);
            }
        }
        off += 16;
    }
}

const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = _assert_send_sync::<Pager>();

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};

    fn sample_table(rows: i64) -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("b", ColType::Str),
            ],
        ));
        for i in 0..rows {
            t.insert(vec![Value::Int(i), Value::str(format!("row-{i}"))]);
        }
        t
    }

    #[test]
    fn materialized_heap_reads_real_bytes() {
        let mut pager = Pager::new("unit_heap").expect("pager");
        let t = sample_table(500);
        pager.materialize_table("t", &t).expect("materialize");
        let key = PageKey {
            rel: table_rel_id("t"),
            page: 0,
        };
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        assert!(pager.read_heap(key, &mut buf).expect("read"));
        // Row 0 header (2 values) then Int(0) in the first slot.
        assert_eq!(u64::from_le_bytes(buf[0..8].try_into().unwrap()), 2);
        assert_eq!(i64::from_le_bytes(buf[8..16].try_into().unwrap()), 0);
        // Second row of the page starts one stride (40 bytes) in.
        assert_eq!(i64::from_le_bytes(buf[48..56].try_into().unwrap()), 1);
        assert_eq!(
            pager.bytes_on_disk(),
            t.n_pages() * PAGE_SIZE as u64,
            "heap file length matches the page model"
        );
    }

    #[test]
    fn unknown_relations_read_as_absent() {
        let pager = Pager::new("unit_absent").expect("pager");
        let mut buf = vec![1u8; PAGE_SIZE as usize];
        let key = PageKey { rel: 42, page: 0 };
        assert!(!pager.read_heap(key, &mut buf).expect("read"));
        assert!(!pager.read_spill(key, &mut buf).expect("read"));
    }

    #[test]
    fn spill_round_trips_pages() {
        let pager = Pager::new("unit_spill").expect("pager");
        let k1 = PageKey { rel: 9, page: 3 };
        let k2 = PageKey { rel: 9, page: 7 };
        let page1 = vec![0xABu8; PAGE_SIZE as usize];
        let page2 = vec![0xCDu8; PAGE_SIZE as usize];
        pager.write_spill(k1, &page1).expect("write 1");
        pager.write_spill(k2, &page2).expect("write 2");
        // Rewrite k1 in place: slot count stays 2.
        let page1b = vec![0xEFu8; PAGE_SIZE as usize];
        pager.write_spill(k1, &page1b).expect("rewrite");
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        assert!(pager.read_spill(k1, &mut buf).expect("read 1"));
        assert_eq!(buf, page1b);
        assert!(pager.read_spill(k2, &mut buf).expect("read 2"));
        assert_eq!(buf, page2);
        assert_eq!(pager.bytes_on_disk(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn drop_removes_the_scratch_dir() {
        let dir;
        {
            let mut pager = Pager::new("unit_drop").expect("pager");
            pager
                .materialize_table("t", &sample_table(10))
                .expect("materialize");
            pager
                .write_spill(PageKey { rel: 1, page: 0 }, &[0u8; PAGE_SIZE as usize])
                .expect("spill");
            dir = pager.dir().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "scratch dir must be removed on drop");
    }
}
