//! Typed reader for `tab-trace-v1` JSONL documents.
//!
//! [`crate::trace`] writes traces; this module reads them back. It is
//! the shared parsing layer under `tab trace-summary`, `tab replay`, and
//! `tab tracediff`: one line becomes one [`TraceRecord`], and a whole
//! document becomes a [`TraceDoc`] that also accounts for what could
//! *not* be parsed — a torn tail (the crash signature
//! [`crate::trace::FileTraceSink`] leaves behind) and skipped malformed
//! lines, mirroring the checkpoint journal's torn-tail handling.
//!
//! The parser is deliberately narrow: it only reads lines produced by
//! [`crate::trace::TraceEvent`], whose rendering never puts a space
//! after the `"key":` colon, so scalar fields can be extracted with a
//! string scan instead of a JSON dependency. Unknown event tags parse
//! as [`TraceRecord::Other`] so a future schema extension does not turn
//! old readers into false torn-trace alarms.

use std::fmt;

/// The schema tag every valid trace line opens with, byte-for-byte as
/// [`crate::trace::TraceEvent::new`] renders it.
pub const SCHEMA_PREFIX: &str = "{\"schema\":\"tab-trace-v1\"";

/// Extract the raw scalar value of `key` from one flat JSONL event line
/// (`None` when absent). Handles the string/number/null forms
/// [`crate::trace::TraceEvent`] emits; not a general JSON parser.
/// String values are returned still escaped — see [`unescape`].
pub fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    if let Some(s) = rest.strip_prefix('"') {
        // String value: trace keys never contain escaped quotes, and
        // label values escape them as \" — scan for the bare quote.
        let mut prev = b' ';
        for (i, b) in s.bytes().enumerate() {
            if b == b'"' && prev != b'\\' {
                return Some(&s[..i]);
            }
            prev = b;
        }
        None
    } else {
        Some(rest.split([',', '}']).next().unwrap_or(rest).trim())
    }
}

/// Reverse [`crate::trace::json_escape`] on a string field value
/// extracted by [`field`].
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                match u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    Some(u) => out.push(u),
                    None => {
                        out.push_str("\\u");
                        out.push_str(&hex);
                    }
                }
            }
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// `key` as an owned, unescaped string.
fn field_string(line: &str, key: &str) -> Option<String> {
    field(line, key).map(unescape)
}

/// `key` as an integer.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

/// `key` as a float. Returns `None` both when the field is absent and
/// when it is `null` (how [`crate::trace::TraceEvent::num`] renders a
/// non-finite value).
fn field_f64(line: &str, key: &str) -> Option<f64> {
    field(line, key)?.parse().ok()
}

/// One parsed `tab-trace-v1` event. Field meanings match the schema
/// table in [`crate::trace`]; numeric fields that the writer may omit
/// (actuals past a timed-out query's cutoff) or render as `null`
/// (non-finite estimates) are `Option`s.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// `span_begin` — a harness section opened.
    SpanBegin {
        /// Section name, e.g. `"NREF"`.
        span: String,
    },
    /// `span_end` — a harness section closed.
    SpanEnd {
        /// Section name.
        span: String,
    },
    /// `query` — one (cell, query) grid job completed.
    Query {
        /// Workload family, e.g. `"NREF2J"`.
        family: String,
        /// Configuration name, e.g. `"1C"`.
        config: String,
        /// Query index within the family's workload.
        query: u64,
        /// `"done"` or `"timeout"`.
        outcome: String,
        /// Metered cost units charged to the query (at the budget for
        /// timeouts).
        units: Option<f64>,
    },
    /// `operator` — one executed plan-operator slot of a grid job.
    Operator {
        /// Workload family.
        family: String,
        /// Configuration name.
        config: String,
        /// Query index within the family's workload.
        query: u64,
        /// Operator slot index within the plan (0 = frequency setup).
        op: u64,
        /// Operator label, e.g. `IndexScan(protein cols=[2])`.
        label: String,
        /// Planner-estimated cost for this slot.
        est_cost: Option<f64>,
        /// Planner-estimated output rows for this slot.
        est_rows: Option<f64>,
        /// Actual input rows (absent past a timeout cutoff).
        rows_in: Option<u64>,
        /// Actual output rows (absent past a timeout cutoff).
        rows_out: Option<u64>,
        /// Actual index probes (absent past a timeout cutoff).
        probes: Option<u64>,
        /// Actual metered cost units (absent past a timeout cutoff).
        units: Option<f64>,
    },
    /// `advisor_begin` — a greedy search started.
    AdvisorBegin {
        /// Advisor name (the configuration the search will produce).
        advisor: String,
        /// Candidate structures under consideration.
        candidates: u64,
        /// Storage budget in MiB.
        budget_mib: u64,
        /// Objective value of the starting configuration.
        initial_total: Option<f64>,
        /// Minimum-gain stopping threshold.
        threshold: Option<f64>,
    },
    /// `advisor_round` — the search accepted one structure.
    AdvisorRound {
        /// Advisor name.
        advisor: String,
        /// Zero-based round index.
        round: u64,
        /// Picked candidate's index in the candidate vector.
        candidate: u64,
        /// Human-readable candidate description.
        desc: String,
        /// Estimated objective gain of the pick.
        gain: Option<f64>,
        /// Gain per byte (the selection metric).
        density: Option<f64>,
        /// Estimated size of the pick in bytes.
        size_bytes: u64,
        /// Objective value after applying the pick.
        objective_after: Option<f64>,
        /// What-if requests issued during this round.
        whatif_calls: u64,
        /// Planner invocations during this round.
        planner_calls: u64,
        /// Cache hits during this round.
        cache_hits: u64,
    },
    /// `advisor_stop` — the search stopped with no acceptable candidate
    /// (or hit an explicit budget).
    AdvisorStop {
        /// Advisor name.
        advisor: String,
        /// Round index at which the search stopped.
        round: u64,
        /// Stop reason, when the writer named one.
        reason: Option<String>,
    },
    /// `advisor_end` — the search finished.
    AdvisorEnd {
        /// Advisor name.
        advisor: String,
        /// Structures accepted in total.
        rounds: u64,
        /// Final objective value.
        objective_final: Option<f64>,
        /// Total what-if requests issued.
        whatif_calls: u64,
        /// Total planner invocations.
        planner_calls: u64,
        /// Total cache hits.
        cache_hits: u64,
    },
    /// `page` — one buffer-pool access (hit, miss, or eviction),
    /// emitted only when a query runs with a `--buffer-pages` pool.
    Page {
        /// `"hit"`, `"miss"`, or `"evict"`.
        action: String,
        /// FNV-1a relation id (see [`crate::pool::table_rel_id`]).
        rel: u64,
        /// Zero-based page number within the relation.
        page: u64,
        /// Frame slot the page occupies (or, for `evict`, vacates).
        frame: u64,
        /// Position in the query's logical access sequence — the value
        /// that makes eviction auditable: replaying the `seq`-ordered
        /// stream through a fresh pool reproduces every hit and evict.
        seq: u64,
    },
    /// Any schema-valid line whose event tag this reader does not model.
    Other {
        /// The unrecognized event tag.
        event: String,
    },
}

/// A line the reader could not parse: its 1-based line number and why.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedLine {
    /// 1-based line number in the input document.
    pub line_no: usize,
    /// Short reason, e.g. `"missing schema tag"`.
    pub reason: String,
}

impl fmt::Display for SkippedLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line_no, self.reason)
    }
}

/// A parsed trace document: the records that parsed, the lines that did
/// not, and whether the document ends mid-line (a torn tail —
/// [`crate::trace::FileTraceSink`] always writes complete
/// newline-terminated lines, so a missing final newline is the
/// signature of a crash or injected `truncate:trace` fault).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceDoc {
    /// Successfully parsed records, in document order.
    pub records: Vec<TraceRecord>,
    /// Lines that failed to parse (excluding the torn tail).
    pub skipped: Vec<SkippedLine>,
    /// Whether the document ends without a final newline.
    pub torn_tail: bool,
}

impl TraceDoc {
    /// One-line account of everything that failed to parse, or `None`
    /// for a fully clean document. This is what `tab trace-summary`
    /// appends so malformed input is never silently dropped.
    pub fn damage_report(&self) -> Option<String> {
        if self.skipped.is_empty() && !self.torn_tail {
            return None;
        }
        let mut parts = Vec::new();
        if !self.skipped.is_empty() {
            let mut s = format!("skipped {} malformed line(s):", self.skipped.len());
            for sk in self.skipped.iter().take(3) {
                s.push_str(&format!(" [{sk}]"));
            }
            if self.skipped.len() > 3 {
                s.push_str(" ...");
            }
            parts.push(s);
        }
        if self.torn_tail {
            parts.push("torn tail: document ends mid-line (crashed or truncated writer)".into());
        }
        Some(parts.join("; "))
    }
}

/// Parse one schema-tagged line into a [`TraceRecord`]. Returns
/// `Err(reason)` for lines that do not carry the schema prefix or lack
/// the fields their event tag requires.
pub fn parse_line(line: &str) -> Result<TraceRecord, String> {
    if !line.starts_with(SCHEMA_PREFIX) {
        return Err("missing tab-trace-v1 schema tag".into());
    }
    if !line.ends_with('}') {
        return Err("unterminated event object".into());
    }
    let event = field(line, "event").ok_or("missing event tag")?;
    // Per-event required fields; a miss is a malformed line, not a panic.
    macro_rules! req {
        ($f:ident, $key:literal) => {
            $f(line, $key).ok_or(concat!("missing field ", $key))?
        };
    }
    Ok(match event {
        "span_begin" => TraceRecord::SpanBegin {
            span: req!(field_string, "span"),
        },
        "span_end" => TraceRecord::SpanEnd {
            span: req!(field_string, "span"),
        },
        "query" => TraceRecord::Query {
            family: req!(field_string, "family"),
            config: req!(field_string, "config"),
            query: req!(field_u64, "query"),
            outcome: req!(field_string, "outcome"),
            units: field_f64(line, "units"),
        },
        "operator" => TraceRecord::Operator {
            family: req!(field_string, "family"),
            config: req!(field_string, "config"),
            query: req!(field_u64, "query"),
            op: req!(field_u64, "op"),
            label: req!(field_string, "label"),
            est_cost: field_f64(line, "est_cost"),
            est_rows: field_f64(line, "est_rows"),
            rows_in: field_u64(line, "rows_in"),
            rows_out: field_u64(line, "rows_out"),
            probes: field_u64(line, "probes"),
            units: field_f64(line, "units"),
        },
        "advisor_begin" => TraceRecord::AdvisorBegin {
            advisor: req!(field_string, "advisor"),
            candidates: req!(field_u64, "candidates"),
            budget_mib: req!(field_u64, "budget_mib"),
            initial_total: field_f64(line, "initial_total"),
            threshold: field_f64(line, "threshold"),
        },
        "advisor_round" => TraceRecord::AdvisorRound {
            advisor: req!(field_string, "advisor"),
            round: req!(field_u64, "round"),
            candidate: req!(field_u64, "candidate"),
            desc: field_string(line, "desc").unwrap_or_default(),
            gain: field_f64(line, "gain"),
            density: field_f64(line, "density"),
            size_bytes: field_u64(line, "size_bytes").unwrap_or(0),
            objective_after: field_f64(line, "objective_after"),
            whatif_calls: field_u64(line, "whatif_calls").unwrap_or(0),
            planner_calls: field_u64(line, "planner_calls").unwrap_or(0),
            cache_hits: field_u64(line, "cache_hits").unwrap_or(0),
        },
        "advisor_stop" => TraceRecord::AdvisorStop {
            advisor: req!(field_string, "advisor"),
            round: req!(field_u64, "round"),
            reason: field_string(line, "reason"),
        },
        "advisor_end" => TraceRecord::AdvisorEnd {
            advisor: req!(field_string, "advisor"),
            rounds: req!(field_u64, "rounds"),
            objective_final: field_f64(line, "objective_final"),
            whatif_calls: field_u64(line, "whatif_calls").unwrap_or(0),
            planner_calls: field_u64(line, "planner_calls").unwrap_or(0),
            cache_hits: field_u64(line, "cache_hits").unwrap_or(0),
        },
        "page" => TraceRecord::Page {
            action: req!(field_string, "action"),
            rel: req!(field_u64, "rel"),
            page: req!(field_u64, "page"),
            frame: req!(field_u64, "frame"),
            seq: req!(field_u64, "seq"),
        },
        other => TraceRecord::Other {
            event: other.to_string(),
        },
    })
}

/// Parse a whole `tab-trace-v1` document. Never fails: malformed lines
/// are counted in [`TraceDoc::skipped`] and a missing final newline
/// sets [`TraceDoc::torn_tail`] (the final fragment is *not* parsed and
/// *not* counted as skipped — it is the crash artifact itself).
pub fn read_trace(input: &str) -> TraceDoc {
    let mut doc = TraceDoc {
        torn_tail: !input.is_empty() && !input.ends_with('\n'),
        ..TraceDoc::default()
    };
    let complete = match input.rfind('\n') {
        Some(last) if doc.torn_tail => &input[..=last],
        _ if doc.torn_tail => "", // a single torn fragment, no full lines
        _ => input,
    };
    for (i, line) in complete.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(rec) => doc.records.push(rec),
            Err(reason) => doc.skipped.push(SkippedLine {
                line_no: i + 1,
                reason,
            }),
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MemoryTraceSink, Trace, TraceEvent};

    #[test]
    fn field_extracts_strings_numbers_and_null() {
        let line = r#"{"schema":"tab-trace-v1","event":"operator","family":"NREF2J","label":"SeqScan(\"t\")","units":1.250,"bad":null,"rows_out":7}"#;
        assert_eq!(field(line, "event"), Some("operator"));
        assert_eq!(field(line, "family"), Some("NREF2J"));
        assert_eq!(field(line, "label"), Some(r#"SeqScan(\"t\")"#));
        assert_eq!(field(line, "units"), Some("1.250"));
        assert_eq!(field(line, "bad"), Some("null"));
        assert_eq!(field(line, "rows_out"), Some("7"));
        assert_eq!(field(line, "missing"), None);
    }

    #[test]
    fn unescape_reverses_json_escape() {
        for s in ["plain", "a\"b\\c", "tab\there\nand\rthere", "ctrl\u{1}x"] {
            assert_eq!(unescape(&crate::trace::json_escape(s)), s, "{s:?}");
        }
    }

    #[test]
    fn round_trips_writer_events() {
        let sink = MemoryTraceSink::new();
        let trace = Trace::to(&sink);
        trace.span_begin("grid");
        trace.emit(|| {
            TraceEvent::new("operator")
                .str("family", "NREF2J")
                .str("config", "1C")
                .int("query", 3)
                .int("op", 1)
                .str("label", "IndexScan(\"protein\" cols=[2])")
                .num("est_cost", 12.5)
                .num("est_rows", f64::INFINITY)
                .int("rows_in", 0)
                .int("rows_out", 42)
                .int("probes", 7)
                .num("units", 3.25)
        });
        trace.emit(|| {
            TraceEvent::new("query")
                .str("family", "NREF2J")
                .str("config", "1C")
                .int("query", 3)
                .str("outcome", "done")
                .num("units", 3.5)
        });
        let text = sink.lines().join("\n") + "\n";
        let doc = read_trace(&text);
        assert!(doc.skipped.is_empty() && !doc.torn_tail, "{doc:?}");
        assert_eq!(doc.records.len(), 3);
        assert_eq!(
            doc.records[0],
            TraceRecord::SpanBegin {
                span: "grid".into()
            }
        );
        match &doc.records[1] {
            TraceRecord::Operator {
                label,
                est_cost,
                est_rows,
                rows_out,
                probes,
                units,
                ..
            } => {
                assert_eq!(label, "IndexScan(\"protein\" cols=[2])");
                assert_eq!(*est_cost, Some(12.5));
                assert_eq!(*est_rows, None, "non-finite renders null, reads None");
                assert_eq!(*rows_out, Some(42));
                assert_eq!(*probes, Some(7));
                assert_eq!(*units, Some(3.25));
            }
            other => panic!("expected operator, got {other:?}"),
        }
        match &doc.records[2] {
            TraceRecord::Query { outcome, units, .. } => {
                assert_eq!(outcome, "done");
                assert_eq!(*units, Some(3.5));
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_counted_not_dropped() {
        let text = concat!(
            "{\"schema\":\"tab-trace-v1\",\"event\":\"span_begin\",\"span\":\"x\"}\n",
            "not json at all\n",
            "{\"schema\":\"tab-trace-v1\",\"event\":\"query\",\"family\":\"F\"}\n",
            "{\"schema\":\"tab-trace-v1\",\"event\":\"novel_event\",\"k\":1}\n",
        );
        let doc = read_trace(text);
        assert!(!doc.torn_tail);
        assert_eq!(doc.records.len(), 2, "{doc:?}");
        assert_eq!(
            doc.records[1],
            TraceRecord::Other {
                event: "novel_event".into()
            }
        );
        assert_eq!(doc.skipped.len(), 2);
        assert_eq!(doc.skipped[0].line_no, 2);
        assert!(doc.skipped[0].reason.contains("schema"), "{doc:?}");
        assert_eq!(doc.skipped[1].line_no, 3);
        assert!(doc.skipped[1].reason.contains("config"), "{doc:?}");
        let report = doc.damage_report().expect("damage to report");
        assert!(report.contains("skipped 2"), "{report}");
    }

    #[test]
    fn torn_tail_is_flagged_and_fragment_not_parsed() {
        let text = concat!(
            "{\"schema\":\"tab-trace-v1\",\"event\":\"span_begin\",\"span\":\"x\"}\n",
            "{\"schema\":\"tab-trace-v1\",\"event\":\"que", // torn mid-line
        );
        let doc = read_trace(text);
        assert!(doc.torn_tail);
        assert_eq!(doc.records.len(), 1);
        assert!(doc.skipped.is_empty(), "fragment is torn, not skipped");
        assert!(doc.damage_report().expect("report").contains("torn"));

        // A lone fragment with no complete line at all.
        let doc = read_trace("{\"schema\":\"tab-tra");
        assert!(doc.torn_tail && doc.records.is_empty() && doc.skipped.is_empty());

        // Empty input is clean, not torn.
        let doc = read_trace("");
        assert!(!doc.torn_tail && doc.damage_report().is_none());
    }
}
