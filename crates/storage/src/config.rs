//! System configurations: the object the paper's recommenders recommend.
//!
//! A [`Configuration`] is a declarative set of index specs and
//! materialized-view definitions (the paper's `C_i`, §2.2). Building one
//! against a [`Database`] yields a [`BuiltConfiguration`] holding the
//! physical structures plus the *build cost* and *size* that populate
//! Table 1, and supporting the per-tuple insertion maintenance costs of
//! the §4.4 experiment.

use std::collections::BTreeMap;

use crate::db::Database;
use crate::index::{BTreeIndex, IndexSpec};
use crate::mview::{MViewSpec, MaterializedView};
use crate::table::{RowId, PAGE_SIZE};
use crate::value::Value;

/// A materialized view together with the indexes to define over it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MViewDef {
    /// The view definition.
    pub spec: MViewSpec,
    /// Index key column lists, positions into the view's projection.
    pub indexes: Vec<Vec<usize>>,
}

/// A declarative configuration: what to build, not the built artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Configuration {
    /// Display name, e.g. `A_NREF_P`, `B_NREF2J_R`, `C_SkTH_1C`.
    pub name: String,
    /// Secondary indexes over base tables.
    pub indexes: Vec<IndexSpec>,
    /// Materialized views with their indexes.
    pub mviews: Vec<MViewDef>,
}

impl Configuration {
    /// An empty configuration with a name.
    pub fn named(name: impl Into<String>) -> Self {
        Configuration {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Number of base-table indexes with exactly `n` key columns
    /// (Table 2 / Table 3 rows).
    pub fn count_indexes_with_width(&self, n: usize) -> usize {
        self.indexes.iter().filter(|i| i.columns.len() == n).count()
    }

    /// Number of MV indexes with exactly `n` key columns.
    pub fn count_mv_indexes_with_width(&self, n: usize) -> usize {
        self.mviews
            .iter()
            .flat_map(|m| m.indexes.iter())
            .filter(|cols| cols.len() == n)
            .count()
    }

    /// Deduplicate indexes and drop those subsumed by a wider index with
    /// the same prefix.
    pub fn normalize(&mut self) {
        self.indexes.sort();
        self.indexes.dedup();
        let all = self.indexes.clone();
        self.indexes
            .retain(|i| !all.iter().any(|j| j != i && j.subsumes(i)));
    }
}

/// Build-cost and size summary for one built configuration (Table 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildReport {
    /// Pages written while building indexes and materializing views.
    pub pages_written: u64,
    /// Pages occupied by the configuration's auxiliary structures
    /// (indexes + view heaps + view indexes), excluding base heaps.
    pub aux_pages: u64,
}

impl BuildReport {
    /// Auxiliary size in bytes.
    pub fn aux_bytes(&self) -> u64 {
        self.aux_pages * PAGE_SIZE as u64
    }
}

/// A configuration physically built against a database.
///
/// Cloning deep-copies the built structures; the concurrent engine's
/// copy-on-write write path clones every built configuration of a
/// generation alongside the database, maintains the copies, and
/// publishes them together so a snapshot's indexes always match its
/// heaps.
#[derive(Debug, Clone)]
pub struct BuiltConfiguration {
    /// The declarative description.
    pub config: Configuration,
    /// Built base-table indexes.
    pub indexes: Vec<BTreeIndex>,
    /// Built views, each with its indexes.
    pub mviews: Vec<(MaterializedView, Vec<BTreeIndex>)>,
    /// Build cost and size.
    pub report: BuildReport,
    /// Per-table index positions for fast maintenance lookups.
    by_table: BTreeMap<String, Vec<usize>>,
}

impl BuiltConfiguration {
    /// Build `config` against `db`.
    ///
    /// # Panics
    /// Panics if a spec references a missing table or column — configs
    /// are produced by in-repo advisors against the same database.
    pub fn build(config: Configuration, db: &Database) -> Self {
        let mut pages_written = 0u64;
        let mut aux_pages = 0u64;
        let mut indexes = Vec::with_capacity(config.indexes.len());
        let mut by_table: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for spec in &config.indexes {
            let table = db
                .table(&spec.table)
                .unwrap_or_else(|| panic!("index on missing table `{}`", spec.table));
            let (idx, cost) = BTreeIndex::build(spec.clone(), table);
            pages_written += cost;
            aux_pages += idx.n_pages();
            by_table
                .entry(spec.table.clone())
                .or_default()
                .push(indexes.len());
            indexes.push(idx);
        }
        let mut mviews = Vec::with_capacity(config.mviews.len());
        for def in &config.mviews {
            let bases: Vec<_> = def
                .spec
                .base
                .iter()
                .map(|n| {
                    db.table(n)
                        .unwrap_or_else(|| panic!("mview on missing table `{n}`"))
                })
                .collect();
            let (mv, cost) = MaterializedView::materialize(def.spec.clone(), &bases);
            pages_written += cost;
            aux_pages += mv.table.n_pages();
            let mut mv_indexes = Vec::with_capacity(def.indexes.len());
            for cols in &def.indexes {
                let (idx, icost) = mv.build_index(cols.clone());
                pages_written += icost;
                aux_pages += idx.n_pages();
                mv_indexes.push(idx);
            }
            mviews.push((mv, mv_indexes));
        }
        BuiltConfiguration {
            config,
            indexes,
            mviews,
            report: BuildReport {
                pages_written,
                aux_pages,
            },
            by_table,
        }
    }

    /// Indexes defined over a given base table or view name.
    pub fn indexes_on<'a>(&'a self, table: &str) -> impl Iterator<Item = &'a BTreeIndex> {
        let table = table.to_string();
        let base = self
            .by_table
            .get(&table)
            .into_iter()
            .flatten()
            .map(|&i| &self.indexes[i]);
        let views = self
            .mviews
            .iter()
            .filter(move |(mv, _)| mv.spec.name == table)
            .flat_map(|(_, idxs)| idxs.iter());
        base.chain(views)
    }

    /// Non-stale materialized views.
    pub fn fresh_mviews(&self) -> impl Iterator<Item = &(MaterializedView, Vec<BTreeIndex>)> {
        self.mviews.iter().filter(|(mv, _)| !mv.stale)
    }

    /// Apply an insertion into base table `table` (already appended to the
    /// heap as row id `id`), maintaining base-table indexes and marking
    /// dependent views stale.
    ///
    /// Returns the maintenance cost in pages: one amortized heap write
    /// plus a tree descent and leaf write per index on the table, plus a
    /// modeled delta-join charge per dependent view — the cost structure
    /// behind §4.4's "it takes longer to insert tuples in 1C than in the
    /// recommended configuration".
    pub fn apply_insert(&mut self, table: &str, row: &[Value], id: RowId) -> u64 {
        let mut pages = 1; // heap page write (worst-case, uncached)
        if let Some(positions) = self.by_table.get(table) {
            for &p in positions {
                pages += self.indexes[p].insert(row, id);
            }
        }
        for (mv, _) in &mut self.mviews {
            if mv.spec.base.iter().any(|b| b == table) {
                // Delta maintenance: probe the other side + write the view.
                pages += 3;
                mv.stale = true;
            }
        }
        pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};
    use crate::table::Table;

    fn db() -> Database {
        let mut db = Database::new();
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("b", ColType::Int),
            ],
        ));
        for i in 0..1000 {
            t.insert(vec![Value::Int(i % 7), Value::Int(i)]);
        }
        let mut u = Table::new(TableSchema::new(
            "u",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("c", ColType::Str),
            ],
        ));
        for i in 0..100 {
            u.insert(vec![Value::Int(i % 7), Value::str(format!("u{i}"))]);
        }
        db.add_table(t);
        db.add_table(u);
        db
    }

    #[test]
    fn build_reports_size_and_cost() {
        let db = db();
        let mut cfg = Configuration::named("test");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        cfg.indexes.push(IndexSpec::new("t", vec![0, 1]));
        let built = BuiltConfiguration::build(cfg, &db);
        assert_eq!(built.indexes.len(), 2);
        assert!(built.report.aux_pages >= 2);
        assert!(built.report.pages_written >= built.report.aux_pages);
        assert_eq!(built.indexes_on("t").count(), 2);
        assert_eq!(built.indexes_on("u").count(), 0);
    }

    #[test]
    fn build_with_mview_and_mv_index() {
        let db = db();
        let mut cfg = Configuration::named("mv");
        cfg.mviews.push(MViewDef {
            spec: MViewSpec::join_of("v", "t", "u", vec![(0, 0)], vec![(0, 1), (1, 1)]),
            indexes: vec![vec![0]],
        });
        let built = BuiltConfiguration::build(cfg, &db);
        assert_eq!(built.mviews.len(), 1);
        assert!(built.mviews[0].0.table.n_rows() > 0);
        assert_eq!(built.indexes_on("v").count(), 1);
    }

    #[test]
    fn insert_maintenance_costs_scale_with_index_count() {
        let db = db();
        let p = BuiltConfiguration::build(Configuration::named("p"), &db);
        let mut cfg = Configuration::named("1c");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        cfg.indexes.push(IndexSpec::new("t", vec![1]));
        let mut onec = BuiltConfiguration::build(cfg, &db);
        let mut p = p;
        let row = vec![Value::Int(3), Value::Int(9999)];
        let cost_p = p.apply_insert("t", &row, 1000);
        let cost_1c = onec.apply_insert("t", &row, 1000);
        assert!(cost_1c > cost_p, "indexed config must pay more per insert");
        // Index actually reflects the insert.
        assert!(onec.indexes[1]
            .probe(&[Value::Int(9999)])
            .row_ids
            .contains(&1000));
    }

    #[test]
    fn insert_marks_dependent_view_stale() {
        let db = db();
        let mut cfg = Configuration::named("mv");
        cfg.mviews.push(MViewDef {
            spec: MViewSpec::projection_of("v", "t", vec![0]),
            indexes: vec![],
        });
        let mut built = BuiltConfiguration::build(cfg, &db);
        assert_eq!(built.fresh_mviews().count(), 1);
        built.apply_insert("t", &[Value::Int(1), Value::Int(2)], 1000);
        assert_eq!(built.fresh_mviews().count(), 0);
    }

    #[test]
    fn normalize_removes_subsumed() {
        let mut cfg = Configuration::named("n");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        cfg.indexes.push(IndexSpec::new("t", vec![0, 1]));
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        cfg.indexes.push(IndexSpec::new("t", vec![1]));
        cfg.normalize();
        assert_eq!(cfg.indexes.len(), 2);
        assert!(cfg.indexes.contains(&IndexSpec::new("t", vec![0, 1])));
        assert!(cfg.indexes.contains(&IndexSpec::new("t", vec![1])));
    }

    #[test]
    fn width_counts_for_tables_2_and_3() {
        let mut cfg = Configuration::named("w");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        cfg.indexes.push(IndexSpec::new("t", vec![0, 1]));
        cfg.mviews.push(MViewDef {
            spec: MViewSpec::projection_of("v", "t", vec![0, 1]),
            indexes: vec![vec![0], vec![0, 1]],
        });
        assert_eq!(cfg.count_indexes_with_width(1), 1);
        assert_eq!(cfg.count_indexes_with_width(2), 1);
        assert_eq!(cfg.count_mv_indexes_with_width(1), 1);
        assert_eq!(cfg.count_mv_indexes_with_width(2), 1);
    }
}
