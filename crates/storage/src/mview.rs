//! Materialized views: precomputed join projections over base tables.
//!
//! The paper's System C recommends "materialized views over joins of
//! base tables" with indexes defined on them (Table 3). We support the
//! shape those recommendations take: a view over one base table or over
//! an equi-join of two base tables, projecting a subset of columns. The
//! optimizer in `tab-engine` rewrites a query to scan the view when the
//! view's join is a subgraph of the query's join graph and every column
//! the query needs from the covered tables is projected.

use crate::index::{BTreeIndex, IndexSpec};
use crate::schema::{ColumnDef, TableSchema};
use crate::stats::TableStats;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Definition of a materialized view.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MViewSpec {
    /// View name, unique within a configuration.
    pub name: String,
    /// Base table names: one entry (projection view) or two (join view).
    pub base: Vec<String>,
    /// For a two-table view, the equi-join column pairs
    /// `(base[0].l, base[1].r)`; empty for a single-table view.
    pub join_on: Vec<(usize, usize)>,
    /// Projected columns as `(base_table_position, column_position)`.
    pub projection: Vec<(usize, usize)>,
}

impl MViewSpec {
    /// A single-table projection view.
    pub fn projection_of(name: impl Into<String>, table: &str, cols: Vec<usize>) -> Self {
        MViewSpec {
            name: name.into(),
            base: vec![table.to_string()],
            join_on: Vec::new(),
            projection: cols.into_iter().map(|c| (0, c)).collect(),
        }
    }

    /// A two-table equi-join view.
    pub fn join_of(
        name: impl Into<String>,
        left: &str,
        right: &str,
        on: Vec<(usize, usize)>,
        projection: Vec<(usize, usize)>,
    ) -> Self {
        assert!(!on.is_empty(), "join view needs at least one column pair");
        MViewSpec {
            name: name.into(),
            base: vec![left.to_string(), right.to_string()],
            join_on: on,
            projection,
        }
    }

    /// Name of the view column for projected `(table_pos, col)`.
    pub fn column_name(&self, base_schemas: &[&TableSchema], t: usize, c: usize) -> String {
        format!("{}_{}", self.base[t], base_schemas[t].columns[c].name)
    }

    /// Position within the view of base column `(t, c)`, if projected.
    pub fn view_column_of(&self, t: usize, c: usize) -> Option<usize> {
        self.projection
            .iter()
            .position(|&(pt, pc)| pt == t && pc == c)
    }
}

/// A materialized view: its spec, materialized rows, and statistics.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    /// The defining spec.
    pub spec: MViewSpec,
    /// Materialized contents.
    pub table: Table,
    /// Statistics over the materialized contents.
    pub stats: TableStats,
    /// Set when base tables changed after materialization; a stale view
    /// is skipped by the optimizer.
    pub stale: bool,
}

impl MaterializedView {
    /// Materialize the view against current base-table contents.
    ///
    /// Returns the view and its build cost in pages (base scans + hash
    /// join work + writing the view heap).
    pub fn materialize(spec: MViewSpec, bases: &[&Table]) -> (Self, u64) {
        assert_eq!(spec.base.len(), bases.len(), "base table count mismatch");
        let schemas: Vec<&TableSchema> = bases.iter().map(|t| t.schema()).collect();
        let columns: Vec<ColumnDef> = spec
            .projection
            .iter()
            .map(|&(t, c)| {
                let mut def = schemas[t].columns[c].clone();
                def.name = spec.column_name(&schemas, t, c);
                def
            })
            .collect();
        let mut out = Table::new(TableSchema::new(spec.name.clone(), columns));

        let mut cost = bases.iter().map(|t| t.n_pages()).sum::<u64>();
        if spec.join_on.is_empty() {
            for (_, row) in bases[0].iter() {
                let proj: Vec<Value> = spec
                    .projection
                    .iter()
                    .map(|&(_, c)| row[c].clone())
                    .collect();
                out.insert(proj);
            }
        } else {
            // Hash the right side on its join columns.
            let mut ht: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
            for (id, row) in bases[1].iter() {
                let key: Vec<Value> = spec.join_on.iter().map(|&(_, r)| row[r].clone()).collect();
                if !key.iter().any(Value::is_null) {
                    ht.entry(key).or_default().push(id);
                }
            }
            for (_, lrow) in bases[0].iter() {
                let key: Vec<Value> = spec.join_on.iter().map(|&(l, _)| lrow[l].clone()).collect();
                if let Some(ids) = ht.get(&key) {
                    for &rid in ids {
                        let rrow = bases[1].row(rid);
                        let proj: Vec<Value> = spec
                            .projection
                            .iter()
                            .map(|&(t, c)| {
                                if t == 0 {
                                    lrow[c].clone()
                                } else {
                                    rrow[c].clone()
                                }
                            })
                            .collect();
                        out.insert(proj);
                    }
                }
            }
        }
        cost += out.n_pages();
        let stats = TableStats::collect(&out);
        (
            MaterializedView {
                spec,
                table: out,
                stats,
                stale: false,
            },
            cost,
        )
    }

    /// Build an index over the view's columns.
    pub fn build_index(&self, columns: Vec<usize>) -> (BTreeIndex, u64) {
        BTreeIndex::build(IndexSpec::new(self.spec.name.clone(), columns), &self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef};

    fn bases() -> (Table, Table) {
        let mut l = Table::new(TableSchema::new(
            "l",
            vec![
                ColumnDef::new("k", ColType::Int),
                ColumnDef::new("x", ColType::Int),
            ],
        ));
        let mut r = Table::new(TableSchema::new(
            "r",
            vec![
                ColumnDef::new("k", ColType::Int),
                ColumnDef::new("y", ColType::Str),
            ],
        ));
        for i in 0..10 {
            l.insert(vec![Value::Int(i), Value::Int(i * 10)]);
        }
        for i in 0..5 {
            r.insert(vec![Value::Int(i), Value::str(format!("r{i}"))]);
            r.insert(vec![Value::Int(i), Value::str(format!("r{i}b"))]);
        }
        (l, r)
    }

    #[test]
    fn join_view_materializes_matches() {
        let (l, r) = bases();
        let spec = MViewSpec::join_of("v", "l", "r", vec![(0, 0)], vec![(0, 1), (1, 1)]);
        let (mv, cost) = MaterializedView::materialize(spec, &[&l, &r]);
        // Keys 0..5 match, each with 2 right rows -> 10 rows.
        assert_eq!(mv.table.n_rows(), 10);
        assert!(cost >= 3);
        assert_eq!(mv.table.schema().columns[0].name, "l_x");
        assert_eq!(mv.table.schema().columns[1].name, "r_y");
    }

    #[test]
    fn projection_view_keeps_all_rows() {
        let (l, _) = bases();
        let spec = MViewSpec::projection_of("v", "l", vec![1]);
        let (mv, _) = MaterializedView::materialize(spec, &[&l]);
        assert_eq!(mv.table.n_rows(), 10);
        assert_eq!(mv.table.schema().columns.len(), 1);
    }

    #[test]
    fn view_column_lookup() {
        let spec = MViewSpec::join_of("v", "l", "r", vec![(0, 0)], vec![(0, 1), (1, 1)]);
        assert_eq!(spec.view_column_of(0, 1), Some(0));
        assert_eq!(spec.view_column_of(1, 1), Some(1));
        assert_eq!(spec.view_column_of(0, 0), None);
    }

    #[test]
    fn index_on_view() {
        let (l, r) = bases();
        let spec = MViewSpec::join_of("v", "l", "r", vec![(0, 0)], vec![(0, 0), (1, 1)]);
        let (mv, _) = MaterializedView::materialize(spec, &[&l, &r]);
        let (idx, _) = mv.build_index(vec![0]);
        assert_eq!(idx.probe(&[Value::Int(3)]).row_ids.len(), 2);
    }
}
