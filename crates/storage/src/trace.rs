//! Structured JSONL tracing (`tab-trace-v1`).
//!
//! Every layer of the stack — executor, planner, advisor, harness — can
//! emit structured events through a [`Trace`] handle. The handle is a
//! `Copy` wrapper around an optional [`TraceSink`] reference, and every
//! emission site passes a *closure* that builds the event, so a disabled
//! trace costs one branch per site and never formats anything:
//!
//! ```
//! use tab_storage::trace::{MemoryTraceSink, Trace, TraceEvent};
//!
//! let sink = MemoryTraceSink::new();
//! let trace = Trace::to(&sink);
//! trace.emit(|| TraceEvent::new("query").str("family", "NREF2J").int("rows", 42));
//! assert!(sink.lines()[0].contains("\"schema\":\"tab-trace-v1\""));
//!
//! // Disabled: the closure is never called.
//! Trace::disabled().emit(|| unreachable!());
//! ```
//!
//! # Determinism contract
//!
//! Traces are **observational only**: no event may feed back into cost
//! accounting, planning, or any other benchmark output. A run with a
//! trace attached must produce byte-identical results to one without
//! (`tests/observability.rs` enforces this for the repro harness).
//! Events carry no wall-clock timestamps for the same reason — a trace
//! of a deterministic run is itself deterministic up to line order
//! (parallel workers interleave lines; every event therefore carries the
//! identifying fields needed to aggregate it order-independently).
//!
//! # Event schema (`tab-trace-v1`)
//!
//! One JSON object per line, always with `"schema":"tab-trace-v1"` and
//! an `"event"` tag. The benchmark emits these event kinds:
//!
//! | event | emitted by | key fields |
//! |-------|------------|-----------|
//! | `span_begin` / `span_end` | harness sections | `span` |
//! | `query` | traced grid runs | `family`, `config`, `query`, `outcome`, `units` |
//! | `operator` | traced grid runs | `family`, `config`, `query`, `op`, `label`, `est_cost`, `units`, `rows_out`, `probes` |
//! | `page` | buffer pool (pool mode only) | `action` (`hit`/`miss`/`evict`), `rel`, `page`, `frame`, `seq` |
//! | `advisor_begin` / `advisor_round` / `advisor_stop` / `advisor_end` | greedy search | `candidates`, `gain`, `density`, `cache_hits` |
//!
//! This module lives in `tab-storage` (the root of the crate graph) so
//! the engine and advisor can emit events; `tab-core` re-exports it as
//! the public surface the harness and CLI use.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fault::{tmp_path, FaultPlan, TraceFault};

/// A destination for trace lines. Implementations must be cheap to call
/// and safe to share across the parallel harness's worker threads.
pub trait TraceSink: Send + Sync {
    /// Write one complete JSONL event line (no trailing newline).
    fn emit(&self, line: &str);
}

/// A zero-cost-when-disabled tracing handle: either a reference to a
/// shared [`TraceSink`] or nothing. `Copy`, so it threads through call
/// stacks and `par_map` closures without lifetime gymnastics.
#[derive(Clone, Copy, Default)]
pub struct Trace<'a> {
    sink: Option<&'a dyn TraceSink>,
}

impl fmt::Debug for Trace<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.sink.is_some())
            .finish()
    }
}

impl<'a> Trace<'a> {
    /// The no-op trace: every emission is a single branch.
    pub fn disabled() -> Self {
        Trace { sink: None }
    }

    /// A trace writing to `sink`.
    pub fn to(sink: &'a dyn TraceSink) -> Self {
        Trace { sink: Some(sink) }
    }

    /// Whether events will actually be written. Use to skip expensive
    /// *collection* (not just formatting) when tracing is off.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emit the event built by `build`. The closure runs only when the
    /// trace is enabled, so emission sites pay nothing when disabled.
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink {
            sink.emit(&build().finish());
        }
    }

    /// Emit a `span_begin` event for a named harness section.
    pub fn span_begin(&self, span: &str) {
        self.emit(|| TraceEvent::new("span_begin").str("span", span));
    }

    /// Emit a `span_end` event closing a named harness section.
    pub fn span_end(&self, span: &str) {
        self.emit(|| TraceEvent::new("span_end").str("span", span));
    }
}

/// Builder for one `tab-trace-v1` JSONL event. Fields are appended in
/// call order; keys are not deduplicated, so emit each key once.
#[derive(Debug)]
pub struct TraceEvent {
    buf: String,
}

impl TraceEvent {
    /// Start an event with the given `"event"` tag.
    pub fn new(event: &str) -> Self {
        let mut buf = String::with_capacity(128);
        buf.push_str("{\"schema\":\"tab-trace-v1\",\"event\":\"");
        buf.push_str(&json_escape(event));
        buf.push('"');
        TraceEvent { buf }
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        self.buf.push('"');
        self.buf.push_str(&json_escape(key));
        self.buf.push_str("\":");
    }

    /// Append a string field.
    pub fn str(mut self, key: &str, val: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&json_escape(val));
        self.buf.push('"');
        self
    }

    /// Append an integer field.
    pub fn int(mut self, key: &str, val: u64) -> Self {
        self.key(key);
        self.buf.push_str(&val.to_string());
        self
    }

    /// Append a numeric field, rendered with three decimals. Non-finite
    /// values (a what-if cost can be `inf`) render as `null` to keep the
    /// line valid JSON.
    pub fn num(mut self, key: &str, val: f64) -> Self {
        self.key(key);
        if val.is_finite() {
            self.buf.push_str(&format!("{val:.3}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Close the object and return the finished line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A sink appending lines to a file through a buffered writer. Lines
/// from concurrent workers are serialized by a mutex, so each line lands
/// intact (order across workers is unspecified).
///
/// The sink is crash-consistent: lines stream into the staging file
/// `<path>.tmp`, and [`FileTraceSink::finish`] renames it to the final
/// path only once the run completes, so a killed run never leaves a
/// half-written trace where a reader expects a complete one. Write
/// failures (real or injected via a [`FaultPlan`] arm at site `trace`)
/// never abort the run being observed — the sink goes silent and
/// records the failure for [`FileTraceSink::error`] to report.
pub struct FileTraceSink {
    w: Mutex<BufWriter<File>>,
    path: PathBuf,
    fault: Option<TraceFault>,
    lines: AtomicU64,
    error: Mutex<Option<String>>,
}

impl FileTraceSink {
    /// Create the sink, truncating any previous staging file. The
    /// final path is only written by [`FileTraceSink::finish`].
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(FileTraceSink {
            w: Mutex::new(BufWriter::new(File::create(tmp_path(path))?)),
            path: path.to_path_buf(),
            fault: None,
            lines: AtomicU64::new(0),
            error: Mutex::new(None),
        })
    }

    /// [`FileTraceSink::create`] with the plan's trace faults armed
    /// (simulated ENOSPC or a torn tail — see [`FaultPlan::trace_fault`]).
    pub fn create_with_faults(path: &Path, plan: &FaultPlan) -> std::io::Result<Self> {
        let mut sink = Self::create(path)?;
        sink.fault = plan.trace_fault();
        Ok(sink)
    }

    /// The first write failure, if the sink has gone silent. A failed
    /// trace is a missing artifact the harness reports at exit.
    pub fn error(&self) -> Option<String> {
        self.error
            .lock()
            .expect("trace error slot poisoned")
            .clone()
    }

    fn record_error(&self, msg: String) {
        let mut slot = self.error.lock().expect("trace error slot poisoned");
        slot.get_or_insert(msg);
    }

    /// Flush and publish the staged trace at its final path. If the
    /// sink failed mid-run the partial bytes stay at `<path>.tmp` (the
    /// final path never holds a torn artifact) and the recorded error
    /// is returned.
    pub fn finish(self) -> std::io::Result<PathBuf> {
        if let Some(msg) = self.error() {
            let mut w = self.w.lock().expect("trace writer poisoned");
            let _ = w.flush();
            return Err(std::io::Error::other(msg));
        }
        {
            let mut w = self.w.lock().expect("trace writer poisoned");
            w.flush()?;
        }
        std::fs::rename(tmp_path(&self.path), &self.path)?;
        Ok(self.path)
    }
}

impl TraceSink for FileTraceSink {
    fn emit(&self, line: &str) {
        // Trace output is best-effort diagnostics: a full disk (real or
        // injected) must not abort the benchmark run it is observing.
        let mut w = self.w.lock().expect("trace writer poisoned");
        if self.error().is_some() {
            return; // already failed — stay silent
        }
        if let Some(fault) = self.fault {
            // The line counter lives under the writer lock, so exactly
            // `after_lines` complete lines precede the failure.
            let n = self.lines.fetch_add(1, Ordering::Relaxed);
            if n >= fault.after_lines {
                if fault.torn && n == fault.after_lines {
                    // A crash's torn tail: half a line, no newline.
                    let _ = w.write_all(line.as_bytes()[..line.len() / 2].as_ref());
                    let _ = w.flush();
                }
                self.record_error(format!(
                    "trace sink failed after {} lines ({})",
                    fault.after_lines,
                    if fault.torn {
                        "injected torn write"
                    } else {
                        "injected ENOSPC"
                    }
                ));
                return;
            }
        }
        if let Err(e) = writeln!(w, "{line}") {
            self.record_error(format!("trace write failed: {e}"));
        }
    }
}

/// A sink writing each event line to stderr — the structured replacement
/// for the old ad-hoc `TAB_ADVISOR_DEBUG` narration.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrTraceSink;

impl TraceSink for StderrTraceSink {
    fn emit(&self, line: &str) {
        eprintln!("{line}");
    }
}

/// A sink collecting lines in memory, for tests and the CLI.
#[derive(Debug, Default)]
pub struct MemoryTraceSink {
    lines: Mutex<Vec<String>>,
}

impl MemoryTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lines emitted so far, in arrival order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("trace buffer poisoned").clone()
    }
}

impl TraceSink for MemoryTraceSink {
    fn emit(&self, line: &str) {
        self.lines
            .lock()
            .expect("trace buffer poisoned")
            .push(line.to_string());
    }
}

const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Trace<'static>>();
    _assert_send_sync::<FileTraceSink>();
    _assert_send_sync::<MemoryTraceSink>();
    _assert_send_sync::<StderrTraceSink>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_never_builds_the_event() {
        let trace = Trace::disabled();
        assert!(!trace.is_enabled());
        trace.emit(|| panic!("must not be called"));
    }

    #[test]
    fn events_are_schema_tagged_flat_json() {
        let sink = MemoryTraceSink::new();
        let trace = Trace::to(&sink);
        trace.emit(|| {
            TraceEvent::new("operator")
                .str("label", "SeqScan(\"t\")")
                .int("rows_out", 7)
                .num("units", 1.25)
                .num("bad", f64::INFINITY)
        });
        trace.span_begin("grid");
        trace.span_end("grid");
        let lines = sink.lines();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"schema\":\"tab-trace-v1\",\"event\":\"operator\",\
             \"label\":\"SeqScan(\\\"t\\\")\",\"rows_out\":7,\
             \"units\":1.250,\"bad\":null}"
        );
        assert!(lines[1].contains("\"event\":\"span_begin\""));
        assert!(lines[2].contains("\"span\":\"grid\""));
    }

    #[test]
    fn escape_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn file_sink_stages_then_publishes_atomically() {
        let dir = std::env::temp_dir().join(format!("tab_trace_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let sink = FileTraceSink::create(&path).expect("create");
        Trace::to(&sink).span_begin("grid");
        // Mid-run the final path does not exist — only the staging file.
        assert!(!path.exists(), "final path must not appear mid-run");
        assert!(tmp_path(&path).exists());
        let published = sink.finish().expect("finish");
        assert_eq!(published, path);
        assert!(path.exists() && !tmp_path(&path).exists());
        let text = std::fs::read_to_string(&path).expect("read trace");
        assert!(text.contains("\"event\":\"span_begin\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_trace_faults_tear_then_silence_without_aborting() {
        let dir = std::env::temp_dir().join(format!("tab_trace_fault_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let plan = FaultPlan::parse("truncate:trace:2").expect("spec");
        let sink = FileTraceSink::create_with_faults(&path, &plan).expect("create");
        let trace = Trace::to(&sink);
        for i in 0..5 {
            trace.emit(|| TraceEvent::new("query").int("query", i));
        }
        let err = sink.error().expect("sink records its failure");
        assert!(err.contains("after 2 lines"), "{err}");
        // finish() refuses to publish the torn trace; the partial bytes
        // stay at the staging path for post-mortem.
        let fin = sink.finish().expect_err("torn trace must not publish");
        assert!(fin.to_string().contains("after 2 lines"), "{fin}");
        assert!(!path.exists(), "torn trace must not reach the final path");
        let torn = std::fs::read_to_string(tmp_path(&path)).expect("staging bytes");
        // Exactly two complete lines, then a torn fragment.
        let complete = torn.lines().filter(|l| l.ends_with('}')).count();
        assert_eq!(complete, 2, "torn tail: {torn:?}");
        assert!(!torn.ends_with('\n'), "tail must be torn: {torn:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
