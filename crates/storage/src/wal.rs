//! `tab-wal-v1`: the serving path's write-ahead log.
//!
//! PR 9's serving front end acknowledged wire `INSERT`s that lived only
//! in an in-memory generation — a process kill silently lost committed
//! work. This module is the durability half of the fix (the engine's
//! recovery replay is the other): one **fsynced, length-suffixed,
//! checksummed JSONL record per committed generation mutation**,
//! appended *before* the generation is published, so an acknowledged
//! write is on disk by the time any client sees its ack.
//!
//! # Format
//!
//! A log is a JSONL file. Every line opens with [`WAL_SCHEMA_PREFIX`]
//! and closes with `,"len":L,"crc":"X"}` where `L` is the byte length
//! of the line *before* the `,"len"` suffix and `X` is the FNV-1a-64
//! checksum of those bytes in hex — a self-delimiting frame that makes
//! a torn tail (the crash signature of an append cut short) detectable
//! without any out-of-band state. Field rendering keeps the repo-wide
//! no-space-after-colon discipline, so lines parse with the
//! dependency-free [`crate::trace_reader::field`] scanner.
//!
//! Line 0 is a header carrying the log's base generation; every
//! subsequent line is one insert record whose `gen` numbers must ascend
//! contiguously from `base_gen + 1`. Row values and the maintenance
//! cost cross through bit-exact encodings (`f64::to_bits` hex), so a
//! recovered engine can assert byte-identity against what was acked.
//!
//! # Torn tails vs corruption
//!
//! [`Wal::open`] distinguishes the two crash signatures the same way
//! the checkpoint journal and trace reader do:
//!
//! - a frame that fails validation on the **last** line is a torn tail
//!   — the append was cut mid-write; the tail is truncated away and
//!   recovery proceeds with every complete record (none of which was
//!   ever acknowledged, because the ack follows the fsync);
//! - a frame that fails anywhere **before** the last line is disk
//!   corruption — an append-only log synced record-by-record cannot
//!   tear mid-file — and recovery refuses with [`WalError::Corrupt`]
//!   rather than silently dropping acknowledged writes.
//!
//! Rotation ([`Wal::rotate`]) stages a fresh header at `<path>.tmp` and
//! renames it over the log, so a crash mid-rotation leaves either the
//! old complete log or the new empty one, never a hybrid.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::fault::{tmp_path, Faults};
use crate::trace::json_escape;
use crate::trace_reader::{field, unescape};
use crate::value::Value;

/// The schema tag every `tab-wal-v1` line opens with, byte-for-byte.
pub const WAL_SCHEMA_PREFIX: &str = "{\"schema\":\"tab-wal-v1\"";

/// One committed generation mutation: everything recovery needs to
/// re-apply the insert and prove it re-applied *identically* (the
/// generation it must produce, the row id and bit-exact maintenance
/// cost that were acknowledged, and the idempotency key if the client
/// supplied one).
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The generation this mutation published.
    pub gen: u64,
    /// Idempotency key owner (empty = the write was not sequence-keyed).
    pub client: String,
    /// Client sequence number (meaningful only when `client` is set).
    pub cseq: u64,
    /// The configuration the maintenance cost was charged to.
    pub config: String,
    /// Target table of the insert.
    pub table: String,
    /// The inserted row, bit-exact (floats survive via `to_bits`).
    pub values: Vec<Value>,
    /// The heap row id the insert produced.
    pub row_id: u32,
    /// The maintenance cost units that were acknowledged.
    pub units: f64,
}

/// Why a WAL could not be opened.
#[derive(Debug)]
pub enum WalError {
    /// The underlying file I/O failed.
    Io(io::Error),
    /// A frame before the last line failed validation — corruption, not
    /// a torn tail; recovery refuses rather than dropping acked writes.
    Corrupt {
        /// Zero-based line number of the bad frame.
        line: usize,
        /// What failed about it.
        message: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt { line, message } => {
                write!(f, "wal corrupt at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// What [`Wal::open`] found: the reopened log plus everything recovery
/// must replay.
#[derive(Debug)]
pub struct WalRecovery {
    /// The log, positioned for further appends.
    pub wal: Wal,
    /// The header's base generation (records continue from it).
    pub base_gen: u64,
    /// Every complete record, in append order.
    pub records: Vec<WalRecord>,
    /// Whether a torn tail was found and truncated away.
    pub torn_tail: bool,
}

/// An open `tab-wal-v1` log, append-only. See the module docs for the
/// format and crash-recovery contract.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Create (or truncate) a log at `path` with a fresh header.
    pub fn create(path: impl AsRef<Path>, base_gen: u64) -> Result<Wal, WalError> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(header_line(base_gen).as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Open a log for recovery + further appends, creating an empty one
    /// (base generation 0) if `path` does not exist. Validates every
    /// frame, truncates a torn tail, and returns the surviving records;
    /// a bad frame anywhere but the tail is [`WalError::Corrupt`].
    pub fn open(path: impl AsRef<Path>) -> Result<WalRecovery, WalError> {
        let path = path.as_ref();
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Ok(WalRecovery {
                    wal: Wal::create(path, 0)?,
                    base_gen: 0,
                    records: Vec::new(),
                    torn_tail: false,
                })
            }
            Err(e) => return Err(WalError::Io(e)),
        };
        let mut base_gen = 0u64;
        let mut records = Vec::new();
        let mut torn_tail = false;
        // Byte offset just past the last validated line (including its
        // newline when present); everything beyond is a torn tail.
        let mut good_end = 0usize;
        let mut line_no = 0usize;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let (line_end, next_pos) = match bytes[pos..].iter().position(|&b| b == b'\n') {
                Some(i) => (pos + i, pos + i + 1),
                None => (bytes.len(), bytes.len()),
            };
            let is_last = next_pos >= bytes.len();
            let parsed = std::str::from_utf8(&bytes[pos..line_end])
                .map_err(|_| "not UTF-8".to_string())
                .and_then(parse_line);
            match parsed {
                Ok(Parsed::Header { base_gen: b }) if line_no == 0 => base_gen = b,
                Ok(Parsed::Insert(r)) if line_no > 0 => {
                    let expected = base_gen + records.len() as u64 + 1;
                    if r.gen != expected {
                        return Err(WalError::Corrupt {
                            line: line_no,
                            message: format!(
                                "generation {} out of order (expected {expected})",
                                r.gen
                            ),
                        });
                    }
                    records.push(r);
                }
                Ok(_) => {
                    return Err(WalError::Corrupt {
                        line: line_no,
                        message: if line_no == 0 {
                            "first line is not a header".into()
                        } else {
                            "header frame past line 0".into()
                        },
                    })
                }
                Err(message) => {
                    if is_last {
                        // The one frame an append-only, synced-per-record
                        // log can legitimately lose: the tail the crash
                        // cut short. Nothing in it was ever acked.
                        torn_tail = true;
                        break;
                    }
                    return Err(WalError::Corrupt {
                        line: line_no,
                        message,
                    });
                }
            }
            good_end = next_pos;
            line_no += 1;
            pos = next_pos;
        }
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        if good_end < bytes.len() {
            file.set_len(good_end as u64)?;
        }
        if line_no == 0 {
            // Even the header was torn (a crash during create); nothing
            // could have been appended after it, so base 0 is exact.
            file.write_all(header_line(0).as_bytes())?;
            file.write_all(b"\n")?;
        } else if bytes[good_end - 1] != b'\n' {
            // The last frame validated but its newline never landed;
            // restore the line boundary before any further append.
            file.write_all(b"\n")?;
        }
        file.sync_data()?;
        Ok(WalRecovery {
            wal: Wal {
                path: path.to_path_buf(),
                file,
            },
            base_gen,
            records,
            torn_tail,
        })
    }

    /// Append one record and fsync it. Returns only once the record is
    /// durable — the caller may acknowledge the write after this.
    ///
    /// Fault sites: `enospc:wal` fails the append with an injected
    /// ENOSPC; `panic:wal:append[:N]` writes *half* the frame (synced,
    /// no newline) and then panics, manufacturing the real torn tail
    /// that [`Wal::open`] must truncate on the next boot.
    pub fn append(&mut self, rec: &WalRecord, faults: Faults<'_>) -> io::Result<()> {
        faults.io("wal")?;
        let line = render_record(rec);
        if faults.panic_fires("wal:append") {
            let half = line.len() / 2;
            let _ = self.file.write_all(&line.as_bytes()[..half]);
            let _ = self.file.sync_data();
            panic!("injected fault: poisoned `wal:append` (torn WAL tail)");
        }
        let mut framed = line.into_bytes();
        framed.push(b'\n');
        self.file.write_all(&framed)?;
        self.file.sync_data()
    }

    /// Atomically replace the log with a fresh one based at `base_gen`
    /// (e.g. after the engine checkpoints its state elsewhere). The new
    /// header is staged at `<path>.tmp` and renamed over the log, so a
    /// crash mid-rotation leaves either the old complete log or the new
    /// empty one.
    pub fn rotate(&mut self, base_gen: u64) -> Result<(), WalError> {
        let tmp = tmp_path(&self.path);
        let mut staged = File::create(&tmp)?;
        staged.write_all(header_line(base_gen).as_bytes())?;
        staged.write_all(b"\n")?;
        staged.sync_data()?;
        drop(staged);
        fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// FNV-1a 64-bit — the frame checksum. Dependency-free and stable
/// across platforms; the WAL needs tamper-evidence against torn writes,
/// not cryptographic strength.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Close a frame: append the length + checksum suffix covering
/// everything rendered so far.
fn finish_frame(body: String) -> String {
    let crc = fnv1a64(body.as_bytes());
    format!("{body},\"len\":{},\"crc\":\"{crc:016x}\"}}", body.len())
}

fn header_line(base_gen: u64) -> String {
    finish_frame(format!(
        "{WAL_SCHEMA_PREFIX},\"kind\":\"header\",\"base_gen\":{base_gen}"
    ))
}

fn render_record(rec: &WalRecord) -> String {
    let mut body = String::with_capacity(192);
    body.push_str(WAL_SCHEMA_PREFIX);
    body.push_str(",\"kind\":\"insert\"");
    body.push_str(&format!(",\"gen\":{}", rec.gen));
    body.push_str(&format!(",\"client\":\"{}\"", json_escape(&rec.client)));
    body.push_str(&format!(",\"cseq\":{}", rec.cseq));
    body.push_str(&format!(",\"cfg\":\"{}\"", json_escape(&rec.config)));
    body.push_str(&format!(",\"table\":\"{}\"", json_escape(&rec.table)));
    body.push_str(&format!(
        ",\"row\":\"{}\"",
        json_escape(&encode_values(&rec.values))
    ));
    body.push_str(&format!(",\"row_id\":{}", rec.row_id));
    body.push_str(&format!(",\"units_bits\":\"{:016x}\"", rec.units.to_bits()));
    finish_frame(body)
}

enum Parsed {
    Header { base_gen: u64 },
    Insert(WalRecord),
}

/// Validate one frame (prefix, length, checksum) and parse its fields.
fn parse_line(line: &str) -> Result<Parsed, String> {
    if !line.starts_with(WAL_SCHEMA_PREFIX) {
        return Err("missing tab-wal-v1 schema prefix".into());
    }
    let Some(stripped) = line.strip_suffix('}') else {
        return Err("frame does not close".into());
    };
    let Some(len_pos) = stripped.rfind(",\"len\":") else {
        return Err("frame has no length suffix".into());
    };
    let body = &line[..len_pos];
    let suffix = &stripped[len_pos..];
    let len: usize = field(suffix, "len")
        .and_then(|v| v.parse().ok())
        .ok_or("bad length suffix")?;
    if len != body.len() {
        return Err(format!(
            "length mismatch: frame says {len}, got {}",
            body.len()
        ));
    }
    let crc = field(suffix, "crc").ok_or("frame has no checksum")?;
    let computed = format!("{:016x}", fnv1a64(body.as_bytes()));
    if crc != computed {
        return Err(format!(
            "checksum mismatch: frame says {crc}, computed {computed}"
        ));
    }
    match field(body, "kind") {
        Some("header") => Ok(Parsed::Header {
            base_gen: field(body, "base_gen")
                .and_then(|v| v.parse().ok())
                .ok_or("header without base_gen")?,
        }),
        Some("insert") => {
            let gen = field(body, "gen")
                .and_then(|v| v.parse().ok())
                .ok_or("record without gen")?;
            let client = field(body, "client").map(unescape).ok_or("no client")?;
            let cseq = field(body, "cseq")
                .and_then(|v| v.parse().ok())
                .ok_or("record without cseq")?;
            let config = field(body, "cfg").map(unescape).ok_or("no cfg")?;
            let table = field(body, "table").map(unescape).ok_or("no table")?;
            let values = decode_values(&field(body, "row").map(unescape).ok_or("no row")?)?;
            let row_id = field(body, "row_id")
                .and_then(|v| v.parse().ok())
                .ok_or("record without row_id")?;
            let units = field(body, "units_bits")
                .and_then(|v| u64::from_str_radix(v, 16).ok())
                .map(f64::from_bits)
                .ok_or("record without units_bits")?;
            Ok(Parsed::Insert(WalRecord {
                gen,
                client,
                cseq,
                config,
                table,
                values,
                row_id,
                units,
            }))
        }
        _ => Err("unknown frame kind".into()),
    }
}

/// Encode a row bit-exactly as one comma-separated string: `n` (null),
/// `i<dec>`, `f<to_bits hex>` (so floats survive byte-for-byte), or
/// `s<text>` with `\` and `,` backslash-escaped.
fn encode_values(values: &[Value]) -> String {
    let mut out = String::new();
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match v {
            Value::Null => out.push('n'),
            Value::Int(n) => {
                out.push('i');
                out.push_str(&n.to_string());
            }
            Value::Float(f) => {
                out.push('f');
                out.push_str(&format!("{:016x}", f.to_bits()));
            }
            Value::Str(s) => {
                out.push('s');
                for c in s.chars() {
                    match c {
                        '\\' => out.push_str("\\\\"),
                        ',' => out.push_str("\\,"),
                        c => out.push(c),
                    }
                }
            }
        }
    }
    out
}

/// Reverse [`encode_values`].
fn decode_values(s: &str) -> Result<Vec<Value>, String> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    // Split on unescaped commas first (escapes only ever occur inside
    // `s` payloads), then decode each tagged token.
    let mut tokens: Vec<String> = vec![String::new()];
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some(e @ (',' | '\\')) => {
                    tokens.last_mut().expect("nonempty").push(e);
                }
                _ => return Err("bad escape in row encoding".into()),
            },
            ',' => tokens.push(String::new()),
            c => tokens.last_mut().expect("nonempty").push(c),
        }
    }
    tokens
        .into_iter()
        .map(|t| {
            let mut it = t.chars();
            match it.next() {
                Some('n') if t.len() == 1 => Ok(Value::Null),
                Some('i') => t[1..]
                    .parse()
                    .map(Value::Int)
                    .map_err(|_| format!("bad int value `{t}`")),
                Some('f') => u64::from_str_radix(&t[1..], 16)
                    .map(|bits| Value::Float(f64::from_bits(bits)))
                    .map_err(|_| format!("bad float value `{t}`")),
                Some('s') => Ok(Value::str(&t[1..])),
                _ => Err(format!("unknown value tag in `{t}`")),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tab_wal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn rec(gen: u64) -> WalRecord {
        WalRecord {
            gen,
            client: "c1".into(),
            cseq: gen,
            config: "p".into(),
            table: "source".into(),
            values: vec![
                Value::Int(-42),
                Value::Null,
                Value::Float(0.1 + 0.2),
                Value::str("has, comma \\ and \"quote\""),
            ],
            row_id: 7 + gen as u32,
            units: 4.0 * (0.1 + 0.2),
        }
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("serve.wal");
        let mut wal = Wal::create(&path, 0).expect("create");
        for g in 1..=3 {
            wal.append(&rec(g), Faults::disabled()).expect("append");
        }
        drop(wal);
        let r = Wal::open(&path).expect("open");
        assert_eq!(r.base_gen, 0);
        assert!(!r.torn_tail);
        assert_eq!(r.records.len(), 3);
        for (i, got) in r.records.iter().enumerate() {
            let want = rec(i as u64 + 1);
            assert_eq!(*got, want);
            // PartialEq on f64 is not bit-equality; check bits too.
            assert_eq!(got.units.to_bits(), want.units.to_bits());
            let (Value::Float(a), Value::Float(b)) = (&got.values[2], &want.values[2]) else {
                panic!("float column lost its type");
            };
            assert_eq!(a.to_bits(), b.to_bits());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let dir = tmp_dir("torn");
        let path = dir.join("serve.wal");
        let mut wal = Wal::create(&path, 0).expect("create");
        for g in 1..=3 {
            wal.append(&rec(g), Faults::disabled()).expect("append");
        }
        drop(wal);
        // Tear the tail: cut the last frame mid-way.
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 25]).expect("tear");
        let r = Wal::open(&path).expect("open survives a torn tail");
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 2, "complete records survive");
        // The file is repaired: appends resume on a clean boundary.
        let mut wal = r.wal;
        wal.append(&rec(3), Faults::disabled()).expect("append");
        drop(wal);
        let r = Wal::open(&path).expect("reopen");
        assert!(!r.torn_tail);
        assert_eq!(r.records.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_final_newline_is_not_a_torn_record() {
        let dir = tmp_dir("nonewline");
        let path = dir.join("serve.wal");
        let mut wal = Wal::create(&path, 0).expect("create");
        wal.append(&rec(1), Faults::disabled()).expect("append");
        drop(wal);
        // Crash between the frame landing and its newline: the record
        // is complete and checksummed, so it must survive.
        let mut bytes = fs::read(&path).expect("read");
        assert_eq!(bytes.pop(), Some(b'\n'));
        fs::write(&path, &bytes).expect("strip newline");
        let r = Wal::open(&path).expect("open");
        assert!(!r.torn_tail);
        assert_eq!(r.records.len(), 1);
        let mut wal = r.wal;
        wal.append(&rec(2), Faults::disabled()).expect("append");
        drop(wal);
        assert_eq!(Wal::open(&path).expect("reopen").records.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_corruption_is_refused() {
        let dir = tmp_dir("corrupt");
        let path = dir.join("serve.wal");
        let mut wal = Wal::create(&path, 0).expect("create");
        for g in 1..=3 {
            wal.append(&rec(g), Faults::disabled()).expect("append");
        }
        drop(wal);
        // Flip one byte inside the second record (not the tail).
        let mut bytes = fs::read(&path).expect("read");
        let second_line_start = bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1)
            .nth(1)
            .expect("three lines");
        bytes[second_line_start + 40] ^= 0x20;
        fs::write(&path, &bytes).expect("corrupt");
        match Wal::open(&path) {
            Err(WalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("corruption must be refused, got {other:?}"),
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generation_gaps_are_corruption() {
        let dir = tmp_dir("gap");
        let path = dir.join("serve.wal");
        let mut wal = Wal::create(&path, 0).expect("create");
        wal.append(&rec(1), Faults::disabled()).expect("append");
        wal.append(&rec(3), Faults::disabled())
            .expect("skips gen 2");
        drop(wal);
        assert!(matches!(
            Wal::open(&path),
            Err(WalError::Corrupt { line: 2, .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_rebases_atomically() {
        let dir = tmp_dir("rotate");
        let path = dir.join("serve.wal");
        let mut wal = Wal::create(&path, 0).expect("create");
        wal.append(&rec(1), Faults::disabled()).expect("append");
        wal.rotate(5).expect("rotate");
        let mut r5 = rec(6);
        r5.gen = 6;
        wal.append(&r5, Faults::disabled())
            .expect("append post-rotate");
        drop(wal);
        let r = Wal::open(&path).expect("open");
        assert_eq!(r.base_gen, 5);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].gen, 6);
        assert!(!tmp_path(&path).exists(), "staging file left behind");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn enospc_and_panic_fault_sites_bite() {
        let dir = tmp_dir("faults");
        let path = dir.join("serve.wal");
        let plan = FaultPlan::parse("enospc:wal:1").expect("spec");
        let mut wal = Wal::create(&path, 0).expect("create");
        wal.append(&rec(1), Faults::to(&plan))
            .expect("hit 0 passes");
        let e = wal
            .append(&rec(2), Faults::to(&plan))
            .expect_err("disk full");
        assert!(e.to_string().contains("wal"), "{e}");
        drop(wal);

        // `panic:wal:append` half-writes the frame: the next open must
        // see exactly the torn tail a real crash leaves.
        let plan = FaultPlan::parse("panic:wal:append:1").expect("spec");
        let r = Wal::open(&path).expect("reopen");
        assert_eq!(r.records.len(), 1);
        let mut wal = r.wal;
        wal.append(&rec(2), Faults::to(&plan))
            .expect("hit 0 passes");
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wal.append(&rec(3), Faults::to(&plan))
        }));
        assert!(panicked.is_err(), "armed append must panic");
        drop(wal);
        let r = Wal::open(&path).expect("recovery");
        assert!(r.torn_tail, "half-written frame is a torn tail");
        assert_eq!(r.records.len(), 2, "synced records survive");
        fs::remove_dir_all(&dir).ok();
    }
}
