//! # tab-storage
//!
//! The storage substrate for `tab-bench`, the reproduction of *"Goals and
//! Benchmarks for Autonomic Configuration Recommenders"* (SIGMOD 2005):
//! typed values, heap tables with a page-based I/O cost model, B+tree
//! secondary indexes (1–4 columns), exact statistics with MCV lists and
//! equi-depth histograms, materialized join views, and the
//! [`config::Configuration`] / [`config::BuiltConfiguration`] pair that
//! models the paper's system configurations `C_i`.
//!
//! Everything is deterministic and in-memory; the page model (rather
//! than wall-clock time) is what stands in for the paper's disk-resident
//! elapsed times — see `DESIGN.md` at the workspace root.

#![warn(missing_docs)]

pub mod config;
pub mod csv;
pub mod db;
pub mod fault;
pub mod index;
pub mod mview;
pub mod pager;
pub mod par;
pub mod pool;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod table;
pub mod trace;
pub mod trace_reader;
pub mod value;
pub mod wal;

pub use config::{BuildReport, BuiltConfiguration, Configuration, MViewDef};
pub use csv::{export_table, import_table, CsvError};
pub use db::Database;
pub use fault::{atomic_write, FaultKind, FaultPlan, Faults, TraceFault, WireFault};
pub use index::{BTreeIndex, IndexSpec, Probe};
pub use mview::{MViewSpec, MaterializedView};
pub use pager::Pager;
pub use par::{par_map, par_map_catch, par_run, par_run_catch, Job, JobPanic, Parallelism};
pub use pool::{
    index_rel_id, table_rel_id, temp_rel_id, BufferPool, Fetched, PageHint, PageKey, PoolStats,
};
pub use schema::{ColType, ColumnDef, ForeignKey, TableSchema};
pub use snapshot::{GenerationCell, Snapshot};
pub use stats::{ColumnStats, TableStats};
pub use table::{Row, RowId, Table, PAGE_SIZE};
pub use trace::{FileTraceSink, MemoryTraceSink, StderrTraceSink, Trace, TraceEvent, TraceSink};
pub use trace_reader::{read_trace, SkippedLine, TraceDoc, TraceRecord};
pub use value::Value;
pub use wal::{Wal, WalError, WalRecord, WalRecovery, WAL_SCHEMA_PREFIX};

/// The parallel harness shares these read-only across worker threads; a
/// regression introducing interior mutability (`Cell`, `Rc`, …) must
/// fail to compile, not corrupt a benchmark run.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Database>();
    _assert_send_sync::<BuiltConfiguration>();
    _assert_send_sync::<Table>();
    _assert_send_sync::<BTreeIndex>();
    _assert_send_sync::<MaterializedView>();
    _assert_send_sync::<Pager>();
    _assert_send_sync::<pool::PoolStats>();
};
