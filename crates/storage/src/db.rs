//! The database: named tables plus collected statistics.

use std::collections::BTreeMap;

use crate::stats::TableStats;
use crate::table::Table;

/// A database instance: tables and their statistics.
///
/// Statistics are collected explicitly ([`Database::collect_stats`]),
/// mirroring the benchmark protocol: "we direct the systems to collect
/// statistics before obtaining the recommendations and before running
/// the queries" (§3.2.3).
///
/// Cloning deep-copies tables and statistics; the concurrent engine's
/// copy-on-write write path ([`crate::snapshot::GenerationCell`]) clones
/// the current generation, applies the mutation, and publishes the copy.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    stats: BTreeMap<String, TableStats>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or replace) a table under its schema name.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.schema().name.clone(), table);
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Mutable access to a table (used by the insertion experiment).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// All table names in deterministic order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// All tables in deterministic order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Collect statistics on every table, replacing any previous stats.
    pub fn collect_stats(&mut self) {
        self.stats = self
            .tables
            .iter()
            .map(|(n, t)| (n.clone(), TableStats::collect(t)))
            .collect();
    }

    /// Statistics for a table, if collected.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(name)
    }

    /// Total heap size in pages across all tables.
    pub fn heap_pages(&self) -> u64 {
        self.tables.values().map(Table::n_pages).sum()
    }

    /// Total heap size in bytes.
    pub fn heap_bytes(&self) -> u64 {
        self.tables.values().map(Table::n_bytes).sum()
    }

    /// Verify foreign keys reference existing tables and columns.
    ///
    /// Returns the list of violations as messages (empty means valid).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        for t in self.tables.values() {
            for fk in &t.schema().foreign_keys {
                match self.tables.get(&fk.ref_table) {
                    None => errs.push(format!(
                        "{}: fk references missing table `{}`",
                        t.schema().name,
                        fk.ref_table
                    )),
                    Some(rt) => {
                        for c in &fk.ref_columns {
                            if rt.schema().column_index(c).is_none() {
                                errs.push(format!(
                                    "{}: fk references missing column `{}.{}`",
                                    t.schema().name,
                                    fk.ref_table,
                                    c
                                ));
                            }
                        }
                        if fk.columns.len() != fk.ref_columns.len() {
                            errs.push(format!(
                                "{}: fk arity mismatch to `{}`",
                                t.schema().name,
                                fk.ref_table
                            ));
                        }
                    }
                }
            }
        }
        errs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};
    use crate::value::Value;

    fn db() -> Database {
        let mut db = Database::new();
        let mut parent = Table::new(TableSchema::new(
            "parent",
            vec![ColumnDef::new("id", ColType::Int)],
        ));
        parent.insert(vec![Value::Int(1)]);
        let mut child = Table::new(
            TableSchema::new(
                "child",
                vec![
                    ColumnDef::new("id", ColType::Int),
                    ColumnDef::new("pid", ColType::Int),
                ],
            )
            .foreign_key(&["pid"], "parent", &["id"]),
        );
        child.insert(vec![Value::Int(10), Value::Int(1)]);
        db.add_table(parent);
        db.add_table(child);
        db
    }

    #[test]
    fn lookup_and_names() {
        let db = db();
        assert!(db.table("parent").is_some());
        assert!(db.table("nope").is_none());
        let names: Vec<&str> = db.table_names().collect();
        assert_eq!(names, vec!["child", "parent"]);
    }

    #[test]
    fn stats_available_after_collection() {
        let mut db = db();
        assert!(db.stats("parent").is_none());
        db.collect_stats();
        assert_eq!(db.stats("parent").unwrap().n_rows, 1);
    }

    #[test]
    fn validation_passes_and_fails() {
        let db = db();
        assert!(db.validate().is_empty());

        let mut bad = Database::new();
        bad.add_table(Table::new(
            TableSchema::new("x", vec![ColumnDef::new("a", ColType::Int)]).foreign_key(
                &["a"],
                "ghost",
                &["id"],
            ),
        ));
        assert_eq!(bad.validate().len(), 1);
    }

    #[test]
    fn heap_accounting() {
        let db = db();
        assert!(db.heap_pages() >= 2);
        assert_eq!(db.heap_bytes(), db.heap_pages() * 8192);
    }
}
