//! Immutable snapshot generations: the engine's multi-session substrate.
//!
//! A [`GenerationCell`] publishes a sequence of immutable *generations*
//! of a value (for the engine: the whole database plus its built
//! configurations). Readers take an [`Snapshot`] — an `Arc` pin of one
//! fully published generation — and work against it for as long as they
//! like; writers serialize on an internal latch, build the next
//! generation off to the side, and publish it with a single
//! release-store. The result is the classic epoch/arc-swap discipline:
//!
//! - **readers never block** — taking a snapshot is an atomic load plus
//!   an `Arc` clone; there is no reader-side lock to contend on, and a
//!   writer mid-publish never makes a reader wait;
//! - **readers never see torn state** — a generation is created fully
//!   initialized *before* the index that makes it reachable is stored
//!   (release/acquire pairing via [`OnceLock`] + the `current` index),
//!   so every snapshot is internally consistent end to end;
//! - **writers are latched** — [`GenerationCell::update`] holds a mutex
//!   for the read-copy-update cycle, so concurrent writers serialize and
//!   no update is lost.
//!
//! Old generations stay alive exactly as long as some snapshot pins
//! them; the cell itself retains the `Arc`s in an append-only segment
//! chain (a handful of machine words per generation once the payload is
//! dropped elsewhere — the cell is designed for serving workloads whose
//! write rate is human-scale, not for millions of publishes).
//!
//! See `DESIGN.md` §14 for how the serving front end builds on this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Generations per segment of the append-only slot chain.
const SEG_SIZE: usize = 64;

/// One fixed-size block of publish slots. Blocks are chained through a
/// `OnceLock` so the chain can grow without ever moving a published
/// slot (readers hold plain references into it).
struct Segment<T> {
    slots: [OnceLock<Arc<T>>; SEG_SIZE],
    next: OnceLock<Box<Segment<T>>>,
}

impl<T> Segment<T> {
    fn boxed() -> Box<Self> {
        Box::new(Segment {
            slots: std::array::from_fn(|_| OnceLock::new()),
            next: OnceLock::new(),
        })
    }
}

/// A pinned, immutable generation handed out by
/// [`GenerationCell::snapshot`]. Cloning is an `Arc` clone; the
/// underlying generation lives until the last snapshot of it drops.
#[derive(Debug)]
pub struct Snapshot<T> {
    seq: u64,
    data: Arc<T>,
}

impl<T> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            seq: self.seq,
            data: Arc::clone(&self.data),
        }
    }
}

impl<T> Snapshot<T> {
    /// The generation number this snapshot pins (0 for the initial
    /// value, incremented by every publish).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The pinned value.
    pub fn get(&self) -> &T {
        &self.data
    }
}

impl<T> std::ops::Deref for Snapshot<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.data
    }
}

/// An epoch-published cell: lock-free snapshot reads over an
/// append-only chain of immutable generations, with a latched write
/// path. See the module docs for the full contract.
pub struct GenerationCell<T> {
    head: Box<Segment<T>>,
    /// Index of the newest fully published generation. Stored with
    /// `Release` after the slot it names is initialized; loaded with
    /// `Acquire` by readers.
    current: AtomicU64,
    /// The writer latch: serializes read-copy-update cycles.
    writer: Mutex<()>,
}

impl<T: std::fmt::Debug> std::fmt::Debug for GenerationCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenerationCell")
            .field("seq", &self.current.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl<T> GenerationCell<T> {
    /// A cell holding `initial` as generation 0.
    pub fn new(initial: T) -> Self {
        let head = Segment::boxed();
        head.slots[0]
            .set(Arc::new(initial))
            .unwrap_or_else(|_| unreachable!("fresh segment slot 0 is empty"));
        GenerationCell {
            head,
            current: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The slot for generation `seq`, growing the segment chain as
    /// needed. Readers only ever reach slots at or below `current`,
    /// whose segments already exist; the `get_or_init` only allocates
    /// on the (latched) write path.
    fn slot(&self, seq: u64) -> &OnceLock<Arc<T>> {
        let mut seg: &Segment<T> = &self.head;
        let mut idx = seq as usize;
        while idx >= SEG_SIZE {
            seg = seg.next.get_or_init(Segment::boxed);
            idx -= SEG_SIZE;
        }
        &seg.slots[idx]
    }

    /// The newest published generation number. Monotonically
    /// non-decreasing; a snapshot taken afterwards sees at least this
    /// generation.
    pub fn seq(&self) -> u64 {
        self.current.load(Ordering::Acquire)
    }

    /// Pin the newest published generation. Never blocks: an atomic
    /// load, a segment-chain walk, and an `Arc` clone.
    pub fn snapshot(&self) -> Snapshot<T> {
        let seq = self.current.load(Ordering::Acquire);
        let data = self
            .slot(seq)
            .get()
            .expect("generation at or below `current` is published")
            .clone();
        Snapshot { seq, data }
    }

    /// Acquire the writer latch, tolerating poison: publication is a
    /// single release-store that only happens after an update closure
    /// returns `Ok`, so a panicking writer (e.g. an injected
    /// `panic:wal:append` fault) leaves the published chain fully
    /// consistent — the next writer may safely proceed.
    fn latch(&self) -> std::sync::MutexGuard<'_, ()> {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Publish `value` as the next generation, bypassing the
    /// read-copy-update cycle (the caller built the new value without
    /// looking at the old one). Returns the new generation number.
    pub fn publish(&self, value: T) -> u64 {
        let _latch = self.latch();
        self.publish_locked(value)
    }

    /// Latched read-copy-update: `f` sees the newest generation and
    /// returns the next one (plus a caller-visible result); an `Err`
    /// publishes nothing. Writers serialize here, so no update is lost;
    /// readers keep snapshotting the old generation until the single
    /// release-store that publishes the new one.
    pub fn update<R, E>(&self, f: impl FnOnce(&T) -> Result<(T, R), E>) -> Result<(u64, R), E> {
        let _latch = self.latch();
        let seq = self.current.load(Ordering::Relaxed);
        let cur = self
            .slot(seq)
            .get()
            .expect("current generation is published");
        let (next, out) = f(cur)?;
        Ok((self.publish_locked(next), out))
    }

    /// Publish while holding the writer latch.
    fn publish_locked(&self, value: T) -> u64 {
        let seq = self.current.load(Ordering::Relaxed) + 1;
        if self.slot(seq).set(Arc::new(value)).is_err() {
            unreachable!("generation {seq} published twice");
        }
        // The slot write above happens-before this store; a reader that
        // acquires the new index therefore sees the initialized slot.
        self.current.store(seq, Ordering::Release);
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn initial_generation_is_zero() {
        let cell = GenerationCell::new(41);
        let s = cell.snapshot();
        assert_eq!(s.seq(), 0);
        assert_eq!(*s.get(), 41);
        assert_eq!(cell.seq(), 0);
    }

    #[test]
    fn publish_advances_and_old_snapshots_stay_pinned() {
        let cell = GenerationCell::new(vec![0u8; 8]);
        let old = cell.snapshot();
        let seq = cell.publish(vec![1u8; 8]);
        assert_eq!(seq, 1);
        assert_eq!(old.seq(), 0);
        assert_eq!(old.get(), &vec![0u8; 8], "pinned generation unchanged");
        assert_eq!(cell.snapshot().get(), &vec![1u8; 8]);
    }

    #[test]
    fn update_is_read_copy_update() {
        let cell = GenerationCell::new(10i64);
        let (seq, doubled) = cell
            .update(|v| Ok::<_, ()>((v + 1, v * 2)))
            .expect("infallible");
        assert_eq!((seq, doubled), (1, 20));
        assert_eq!(*cell.snapshot().get(), 11);
        // A failed update publishes nothing.
        let r: Result<(u64, ()), &str> = cell.update(|_| Err("no"));
        assert!(r.is_err());
        assert_eq!(cell.seq(), 1);
    }

    #[test]
    fn chain_grows_past_one_segment() {
        let cell = GenerationCell::new(0usize);
        for i in 1..=(SEG_SIZE * 3) {
            assert_eq!(cell.publish(i), i as u64);
        }
        assert_eq!(*cell.snapshot().get(), SEG_SIZE * 3);
        assert_eq!(cell.seq(), (SEG_SIZE * 3) as u64);
    }

    /// The tentpole invariant: a reader never observes a torn
    /// generation, even while a writer publishes as fast as it can.
    /// Each generation is internally redundant (every element equals
    /// the generation number); any mix would be a torn read.
    #[test]
    fn concurrent_readers_see_only_whole_generations() {
        let cell = Arc::new(GenerationCell::new(vec![0u64; 512]));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last_seq = 0;
                    let mut done = false;
                    // One final check after the writer stops, so the
                    // test still validates a snapshot even if this
                    // thread was never scheduled during the writes
                    // (single-core runners).
                    while !done {
                        done = stop.load(Ordering::Relaxed);
                        let s = cell.snapshot();
                        assert!(s.seq() >= last_seq, "generations are monotone");
                        last_seq = s.seq();
                        let first = s.get()[0];
                        assert!(
                            s.get().iter().all(|&v| v == first),
                            "torn generation: mixed values at seq {}",
                            s.seq()
                        );
                    }
                    last_seq
                })
            })
            .collect();
        for g in 1..=200u64 {
            cell.publish(vec![g; 512]);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert_eq!(r.join().expect("reader panicked"), 200);
        }
        assert_eq!(cell.seq(), 200);
    }
}
