//! B+tree secondary indexes over one to four columns.
//!
//! An index maps a composite key (the indexed column values, in order) to
//! the list of matching row ids. Probes support full-key point lookups
//! and prefix range scans, and report how many *index pages* the probe
//! touched so the executor can charge I/O costs. A covering check lets
//! the optimizer skip heap fetches when the index contains every column a
//! query needs — the mechanism behind the multi-column covering indexes
//! that the paper's recommenders favour (Tables 2–3).

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Bound;

use crate::table::{RowId, Table, PAGE_SIZE};
use crate::value::Value;

/// Maximum number of key columns, per the paper's observation that "no
/// index with more than 4 columns was recommended" (Tables 2–3).
pub const MAX_INDEX_COLUMNS: usize = 4;

/// Static description of an index: which table, which columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IndexSpec {
    /// Table (or materialized view) name the index is defined on.
    pub table: String,
    /// Indexed column positions, significant order, 1..=4 entries.
    pub columns: Vec<usize>,
}

impl IndexSpec {
    /// A new spec.
    ///
    /// # Panics
    /// Panics if `columns` is empty or longer than [`MAX_INDEX_COLUMNS`].
    pub fn new(table: impl Into<String>, columns: Vec<usize>) -> Self {
        assert!(
            !columns.is_empty() && columns.len() <= MAX_INDEX_COLUMNS,
            "index must have 1..={MAX_INDEX_COLUMNS} columns"
        );
        IndexSpec {
            table: table.into(),
            columns,
        }
    }

    /// Stable display name, e.g. `idx_source(1,4)`, as a borrowed
    /// display form: nothing is allocated until the caller actually
    /// formats it (planner/resolver loops format specs per candidate,
    /// so the old `String`-returning version allocated per call).
    pub fn name(&self) -> impl fmt::Display + '_ {
        self
    }

    /// Whether this index's key starts with the other's key (so it can
    /// answer every probe the other can).
    pub fn subsumes(&self, other: &IndexSpec) -> bool {
        self.table == other.table
            && other.columns.len() <= self.columns.len()
            && self.columns[..other.columns.len()] == other.columns[..]
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "idx_{}(", self.table)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
        }
        f.write_str(")")
    }
}

/// Composite index key.
pub type Key = Vec<Value>;

/// Result of an index probe: matching row ids plus the I/O charged.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Matching row ids, in key order.
    pub row_ids: Vec<RowId>,
    /// Index pages touched (tree descent + leaf scan).
    pub pages_touched: u64,
    /// Leaf page number (0-based within the index's leaf level) where
    /// the probe's scan started; `0` for an empty probe. Gives the
    /// buffer pool a stable identity for the `leaf_pages` span
    /// `first_leaf..first_leaf + (pages_touched - height)`.
    pub first_leaf: u64,
}

/// An in-memory B+tree index with a page-cost model.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    spec: IndexSpec,
    map: BTreeMap<Key, Vec<RowId>>,
    /// Cumulative entry count before each distinct key (in key order),
    /// giving every key a stable leaf-page position for the buffer
    /// pool's page identities. Computed at build time; maintenance
    /// inserts do not rebuild it (an inserted key inherits the position
    /// of its nearest predecessor — approximate page identity, exact
    /// page *counts*).
    leaf_starts: BTreeMap<Key, u64>,
    n_entries: u64,
    entry_width: u32,
    clustering: f64,
}

impl BTreeIndex {
    /// Build the index over a table's current contents.
    ///
    /// Returns the index together with its build cost in pages written
    /// (the sort + write cost model used for Table 1's build times).
    pub fn build(spec: IndexSpec, table: &Table) -> (Self, u64) {
        let key_width: u32 = spec
            .columns
            .iter()
            .map(|&c| table.schema().columns[c].byte_width)
            .sum();
        // Key bytes + row-id pointer + entry header.
        let entry_width = key_width + 8 + 4;
        let mut map: BTreeMap<Key, Vec<RowId>> = BTreeMap::new();
        for (id, row) in table.iter() {
            let key: Key = spec.columns.iter().map(|&c| row[c].clone()).collect();
            map.entry(key).or_default().push(id);
        }
        let n_entries = table.n_rows() as u64;
        // Clustering factor (Oracle-style): walk the index in key order
        // and count heap-page switches; divide by entries. Near zero when
        // index order matches heap order (each page serves many entries),
        // 1.0 when every entry lands on a different page.
        let mut page_switches = 0u64;
        let mut last_page: Option<u64> = None;
        for ids in map.values() {
            for &id in ids {
                let pg = table.page_of(id);
                if last_page != Some(pg) {
                    page_switches += 1;
                    last_page = Some(pg);
                }
            }
        }
        let clustering = if n_entries == 0 {
            1.0
        } else {
            (page_switches as f64 / n_entries as f64).clamp(0.0, 1.0)
        };
        let mut leaf_starts = BTreeMap::new();
        let mut cum = 0u64;
        for (k, ids) in &map {
            leaf_starts.insert(k.clone(), cum);
            cum += ids.len() as u64;
        }
        let idx = BTreeIndex {
            spec,
            map,
            leaf_starts,
            n_entries,
            entry_width,
            clustering,
        };
        // Build cost: read the heap once, sort (log factor), write leaves.
        let sort_factor = (n_entries.max(2) as f64).log2().ceil() as u64;
        let build_pages = table.n_pages() * sort_factor.max(1) / 4 + idx.n_pages();
        (idx, build_pages.max(1))
    }

    /// The index spec.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// Entries per leaf page under the page model.
    pub fn entries_per_page(&self) -> u64 {
        (PAGE_SIZE / self.entry_width.max(1)).max(1) as u64
    }

    /// Leaf-level size in pages.
    pub fn n_pages(&self) -> u64 {
        self.n_entries.div_ceil(self.entries_per_page()).max(1)
    }

    /// Nominal byte size.
    pub fn n_bytes(&self) -> u64 {
        self.n_pages() * PAGE_SIZE as u64
    }

    /// Height of the tree (descent cost per probe).
    pub fn height(&self) -> u64 {
        // Fanout ~ entries per page; height = ceil(log_f(leaves)) + 1.
        let leaves = self.n_pages();
        let fanout = self.entries_per_page().max(2);
        let mut h = 1;
        let mut span = fanout;
        while span < leaves {
            span = span.saturating_mul(fanout);
            h += 1;
        }
        h
    }

    /// Point/prefix probe: all rows whose key starts with `prefix`.
    ///
    /// `prefix` may bind fewer columns than the key has, in which case
    /// this is a range scan over the bound prefix.
    pub fn probe(&self, prefix: &[Value]) -> Probe {
        assert!(
            !prefix.is_empty() && prefix.len() <= self.spec.columns.len(),
            "probe prefix must bind 1..=key_len columns"
        );
        let lo: Key = prefix.to_vec();
        let mut row_ids = Vec::new();
        let mut entries = 0u64;
        let mut first_leaf = 0u64;
        for (k, ids) in self.map.range((Bound::Included(lo), Bound::Unbounded)) {
            if k[..prefix.len()] != prefix[..] {
                break;
            }
            if entries == 0 {
                first_leaf = self.leaf_of(k);
            }
            entries += ids.len() as u64;
            row_ids.extend_from_slice(ids);
        }
        let leaf_pages = entries.div_ceil(self.entries_per_page()).max(1);
        Probe {
            row_ids,
            pages_touched: self.height() + leaf_pages,
            first_leaf,
        }
    }

    /// Leaf page holding the first entry of `key` (its nearest
    /// predecessor's position if the key postdates the build).
    fn leaf_of(&self, key: &Key) -> u64 {
        let cum = self
            .leaf_starts
            .range::<Key, _>((Bound::Unbounded, Bound::Included(key)))
            .next_back()
            .map_or(0, |(_, &c)| c);
        (cum / self.entries_per_page()).min(self.n_pages() - 1)
    }

    /// Index page numbers (within this index's relation) of the tree
    /// descent to `first_leaf`: one internal page per level, root last.
    /// Pages `0..n_pages()` are the leaf level; internal levels are
    /// numbered above it, so the root is the relation's hottest page and
    /// stays resident under any reasonable pool size.
    pub fn descent_pages(&self, first_leaf: u64) -> Vec<u64> {
        let fanout = self.entries_per_page().max(2);
        let mut pages = Vec::with_capacity(self.height() as usize);
        let mut base = self.n_pages();
        let mut width = self.n_pages();
        let mut pos = first_leaf.min(width - 1);
        for _ in 0..self.height() {
            width = width.div_ceil(fanout).max(1);
            pos /= fanout;
            pages.push(base + pos);
            base += width;
        }
        pages
    }

    /// Iterate all `(key, row_ids)` groups in key order (full index scan).
    pub fn scan(&self) -> impl Iterator<Item = (&Key, &Vec<RowId>)> {
        self.map.iter()
    }

    /// Range probe on the leading key column: all rows whose first key
    /// component satisfies `lo/hi` style bounds expressed as
    /// `(value, strict)` pairs (`None` = unbounded).
    pub fn probe_leading_range(
        &self,
        lo: Option<(&Value, bool)>,
        hi: Option<(&Value, bool)>,
    ) -> Probe {
        let mut row_ids = Vec::new();
        let mut entries = 0u64;
        let mut first_leaf = 0u64;
        let start: Bound<Key> = match lo {
            // `[v]` sorts before `[v, ...]`, so Included(vec![v]) starts
            // exactly at the first key whose head is v.
            Some((v, _)) => Bound::Included(vec![v.clone()]),
            None => Bound::Unbounded,
        };
        for (k, ids) in self.map.range((start, Bound::Unbounded)) {
            let head = &k[0];
            if let Some((v, strict)) = lo {
                if strict && head == v {
                    continue; // lo-exclusive: skip heads equal to v
                }
            }
            if let Some((v, strict)) = hi {
                if head > v || (strict && head == v) {
                    break;
                }
            }
            if entries == 0 {
                first_leaf = self.leaf_of(k);
            }
            entries += ids.len() as u64;
            row_ids.extend_from_slice(ids);
        }
        let leaf_pages = entries.div_ceil(self.entries_per_page()).max(1);
        Probe {
            row_ids,
            pages_touched: self.height() + leaf_pages,
            first_leaf,
        }
    }

    /// Insert a table row that was just appended (index maintenance).
    ///
    /// Returns pages written (descent + leaf update) for the insertion
    /// cost model of §4.4.
    pub fn insert(&mut self, row: &[Value], id: RowId) -> u64 {
        let key: Key = self.spec.columns.iter().map(|&c| row[c].clone()).collect();
        self.map.entry(key).or_default().push(id);
        self.n_entries += 1;
        self.height() + 1
    }

    /// Total number of entries.
    pub fn n_entries(&self) -> u64 {
        self.n_entries
    }

    /// Measured clustering factor: average heap pages per matching row
    /// for a single-key probe (0 = perfectly clustered, 1 = scattered).
    pub fn clustering(&self) -> f64 {
        self.clustering
    }

    /// Number of distinct keys.
    pub fn n_distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};

    fn table_with(n: i64) -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColType::Int),
                ColumnDef::new("b", ColType::Int),
                ColumnDef::new("c", ColType::Str),
            ],
        ));
        for i in 0..n {
            t.insert(vec![
                Value::Int(i % 10),
                Value::Int(i),
                Value::str(format!("s{}", i % 3)),
            ]);
        }
        t
    }

    #[test]
    fn point_probe_finds_all_matches() {
        let t = table_with(100);
        let (idx, _) = BTreeIndex::build(IndexSpec::new("t", vec![0]), &t);
        let p = idx.probe(&[Value::Int(3)]);
        assert_eq!(p.row_ids.len(), 10);
        for id in &p.row_ids {
            assert_eq!(t.row(*id)[0], Value::Int(3));
        }
        assert!(p.pages_touched >= 1);
    }

    #[test]
    fn prefix_probe_on_composite_key() {
        let t = table_with(60);
        let (idx, _) = BTreeIndex::build(IndexSpec::new("t", vec![0, 1]), &t);
        // Prefix on first column only.
        let p = idx.probe(&[Value::Int(5)]);
        assert_eq!(p.row_ids.len(), 6);
        // Full key is unique here.
        let p2 = idx.probe(&[Value::Int(5), Value::Int(5)]);
        assert_eq!(p2.row_ids.len(), 1);
    }

    #[test]
    fn probe_missing_key_is_empty() {
        let t = table_with(10);
        let (idx, _) = BTreeIndex::build(IndexSpec::new("t", vec![0]), &t);
        assert!(idx.probe(&[Value::Int(99)]).row_ids.is_empty());
    }

    #[test]
    fn insert_maintains_index() {
        let mut t = table_with(10);
        let (mut idx, _) = BTreeIndex::build(IndexSpec::new("t", vec![1]), &t);
        let row = vec![Value::Int(0), Value::Int(777), Value::str("x")];
        let id = t.insert(row.clone());
        let pages = idx.insert(&row, id);
        assert!(pages >= 2);
        assert_eq!(idx.probe(&[Value::Int(777)]).row_ids, vec![id]);
    }

    #[test]
    fn subsumption() {
        let wide = IndexSpec::new("t", vec![0, 1, 2]);
        let narrow = IndexSpec::new("t", vec![0, 1]);
        let other = IndexSpec::new("t", vec![1]);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(!wide.subsumes(&other));
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn too_many_columns_rejected() {
        IndexSpec::new("t", vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn first_leaf_tracks_key_order() {
        let t = table_with(100_000);
        let (idx, _) = BTreeIndex::build(IndexSpec::new("t", vec![1]), &t);
        assert!(idx.n_pages() > 1, "need a multi-leaf index");
        let lo = idx.probe(&[Value::Int(0)]);
        let hi = idx.probe(&[Value::Int(99_999)]);
        assert_eq!(lo.first_leaf, 0);
        assert_eq!(hi.first_leaf, idx.n_pages() - 1);
        assert!(idx.probe(&[Value::Int(50_000)]).first_leaf > 0);
    }

    #[test]
    fn descent_pages_live_above_the_leaf_level() {
        let t = table_with(100_000);
        let (idx, _) = BTreeIndex::build(IndexSpec::new("t", vec![1]), &t);
        let n_leaves = idx.n_pages();
        let d_lo = idx.descent_pages(0);
        let d_hi = idx.descent_pages(n_leaves - 1);
        // One page per level; every descent ends at the same root page.
        assert_eq!(d_lo.len() as u64, idx.height());
        assert_eq!(d_hi.len() as u64, idx.height());
        assert_eq!(d_lo.last(), d_hi.last(), "shared root");
        for p in d_lo.iter().chain(&d_hi) {
            assert!(*p >= n_leaves, "internal pages sit above the leaves");
        }
        // Determinism: the same leaf always descends through the same pages.
        assert_eq!(idx.descent_pages(7), idx.descent_pages(7));
    }

    #[test]
    fn size_grows_with_entries() {
        let small = table_with(100);
        let big = table_with(100_000);
        let (i1, _) = BTreeIndex::build(IndexSpec::new("t", vec![0]), &small);
        let (i2, _) = BTreeIndex::build(IndexSpec::new("t", vec![0]), &big);
        assert!(i2.n_pages() > i1.n_pages());
        assert!(i2.height() >= i1.height());
    }
}

#[cfg(test)]
mod clustering_tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};

    fn table(clustered: bool, n: i64) -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("k", ColType::Int),
                ColumnDef::new("v", ColType::Int),
            ],
        ));
        for i in 0..n {
            // clustered: rows with equal k adjacent; scattered: interleaved.
            let k = if clustered {
                i / 50
            } else {
                i % (n / 50).max(1)
            };
            t.insert(vec![Value::Int(k), Value::Int(i)]);
        }
        t
    }

    #[test]
    fn clustered_heap_has_low_clustering_factor() {
        let (ci, _) = BTreeIndex::build(IndexSpec::new("t", vec![0]), &table(true, 20_000));
        let (si, _) = BTreeIndex::build(IndexSpec::new("t", vec![0]), &table(false, 20_000));
        assert!(
            ci.clustering() < 0.1,
            "clustered index factor should be small: {}",
            ci.clustering()
        );
        assert!(
            si.clustering() > 5.0 * ci.clustering(),
            "scattered ({}) should far exceed clustered ({})",
            si.clustering(),
            ci.clustering()
        );
    }

    #[test]
    fn clustering_bounded_by_one() {
        let (i, _) = BTreeIndex::build(IndexSpec::new("t", vec![1]), &table(false, 5_000));
        assert!(i.clustering() <= 1.0);
        assert!(i.clustering() > 0.0);
    }
}

#[cfg(test)]
mod range_probe_tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};

    fn idx() -> (Table, BTreeIndex) {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("k", ColType::Int),
                ColumnDef::new("v", ColType::Int),
            ],
        ));
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i % 10), Value::Int(i)]);
        }
        let (i, _) = BTreeIndex::build(IndexSpec::new("t", vec![0, 1]), &t);
        (t, i)
    }

    #[test]
    fn bounded_both_sides() {
        let (t, idx) = idx();
        // 3 <= k < 6 -> k in {3,4,5}, 10 rows each.
        let lo = Value::Int(3);
        let hi = Value::Int(6);
        let p = idx.probe_leading_range(Some((&lo, false)), Some((&hi, true)));
        assert_eq!(p.row_ids.len(), 30);
        for id in &p.row_ids {
            let k = t.row(*id)[0].as_int().unwrap();
            assert!((3..6).contains(&k));
        }
    }

    #[test]
    fn strict_and_inclusive_bounds() {
        let (_, idx) = idx();
        let v = Value::Int(5);
        // k > 5 vs k >= 5 differ by exactly the 10 rows at k = 5.
        let gt = idx.probe_leading_range(Some((&v, true)), None);
        let ge = idx.probe_leading_range(Some((&v, false)), None);
        assert_eq!(ge.row_ids.len() - gt.row_ids.len(), 10);
        // k < 5 vs k <= 5 likewise.
        let lt = idx.probe_leading_range(None, Some((&v, true)));
        let le = idx.probe_leading_range(None, Some((&v, false)));
        assert_eq!(le.row_ids.len() - lt.row_ids.len(), 10);
    }

    #[test]
    fn unbounded_returns_everything() {
        let (_, idx) = idx();
        let p = idx.probe_leading_range(None, None);
        assert_eq!(p.row_ids.len(), 100);
        assert!(p.pages_touched >= 1);
    }

    #[test]
    fn empty_span() {
        let (_, idx) = idx();
        let lo = Value::Int(50);
        let p = idx.probe_leading_range(Some((&lo, false)), None);
        assert!(p.row_ids.is_empty());
    }
}
