//! Typed scalar values with a total order and hashing.
//!
//! Values are the unit of data in `tab-bench`: rows are slices of values,
//! index keys are short vectors of values, and predicate constants are
//! single values. Strings are reference-counted (`Arc<str>`) because data
//! generators produce heavily repeated values (taxonomy lineages, part
//! names, …) and sharing keeps scaled databases compact.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar value stored in a table cell.
///
/// The ordering is total: `Null` sorts before everything, numeric values
/// (`Int`, `Float`) compare numerically across the two types, and strings
/// sort after all numbers. Floats use IEEE `total_cmp`, so even NaN has a
/// stable position.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string, shared.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Whether this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, accepting `Int` with a lossless-enough cast.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Approximate on-disk width in bytes, used by the page-size model.
    pub fn byte_width(&self) -> u32 {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 2 + s.len() as u32,
        }
    }

    /// Rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) | Value::Float(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Normalize -0.0 to 0.0 so ordering, equality, and hashing agree.
fn norm(f: f64) -> f64 {
    if f == 0.0 {
        0.0
    } else {
        f
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => norm(*a).total_cmp(&norm(*b)),
            (Int(a), Float(b)) => (*a as f64).total_cmp(&norm(*b)),
            (Float(a), Int(b)) => norm(*a).total_cmp(&(*b as f64)),
            // Generators share `Arc<str>` payloads heavily (taxonomy
            // lineages, part names), so equal strings are usually the
            // *same* allocation: a pointer check skips the byte compare
            // on the executor's hottest equality path.
            (Str(a), Str(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Ints and equal floats must hash identically because they
            // compare equal across types.
            Value::Int(i) => {
                state.write_u8(1);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                state.write_u8(1);
                norm(*f).to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn ordering_across_types() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(5) < Value::str(""));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::Int(2) == Value::Float(2.0));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(h(&Value::Float(0.0)), h(&Value::Float(-0.0)));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn string_sharing_is_cheap() {
        let a = Value::str("lineage");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), Some("lineage"));
    }

    #[test]
    fn byte_widths() {
        assert_eq!(Value::Int(1).byte_width(), 8);
        assert_eq!(Value::str("abc").byte_width(), 5);
        assert_eq!(Value::Null.byte_width(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("x").to_string(), "'x'");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
