//! Table and column statistics for the cost-based optimizer.
//!
//! The benchmark "direct\[s\] the systems to collect statistics before
//! obtaining the recommendations and before running the queries"
//! (§3.2.3), so statistics here are exact-scan statistics: row counts,
//! null counts, distinct counts, a most-common-values (MCV) list, and an
//! equi-depth histogram. The optimizer uses them for selectivity
//! estimation; the *what-if* mode in `tab-engine` deliberately degrades
//! them for hypothetical configurations (see DESIGN.md §1).

use std::collections::HashMap;

use crate::table::Table;
use crate::value::Value;

/// Number of most-common values retained per column.
pub const MCV_LIMIT: usize = 50;

/// Number of equi-depth histogram buckets per column.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Statistics for a single column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Rows in the table when stats were collected.
    pub n_rows: u64,
    /// NULL count.
    pub n_null: u64,
    /// Distinct non-null values.
    pub n_distinct: u64,
    /// Most common values with their exact frequencies, descending.
    pub mcvs: Vec<(Value, u64)>,
    /// Equi-depth histogram bucket boundaries (ascending), including the
    /// minimum as the first entry and the maximum as the last.
    pub bounds: Vec<Value>,
    /// Frequency-of-frequency summary: `(occurrence_count, n_values)`
    /// pairs, ascending by count. Compact (one entry per *distinct*
    /// frequency) and exactly answers "what fraction of rows holds a
    /// value occurring `op k` times" — the estimate the frequency
    /// filters of §3.2.2 need.
    pub freq_of_freq: Vec<(u64, u64)>,
}

impl ColumnStats {
    /// Collect exact statistics for column `col` of `table`.
    pub fn collect(table: &Table, col: usize) -> Self {
        let n_rows = table.n_rows() as u64;
        let mut counts: HashMap<Value, u64> = HashMap::new();
        let mut n_null = 0u64;
        for (_, row) in table.iter() {
            match &row[col] {
                Value::Null => n_null += 1,
                v => *counts.entry(v.clone()).or_insert(0) += 1,
            }
        }
        let n_distinct = counts.len() as u64;

        let mut by_freq: Vec<(Value, u64)> = counts.iter().map(|(v, c)| (v.clone(), *c)).collect();
        by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        by_freq.truncate(MCV_LIMIT);

        let mut fof: HashMap<u64, u64> = HashMap::new();
        for c in counts.values() {
            *fof.entry(*c).or_insert(0) += 1;
        }
        let mut freq_of_freq: Vec<(u64, u64)> = fof.into_iter().collect();
        freq_of_freq.sort_unstable();

        // Equi-depth bounds over the sorted multiset.
        let mut sorted: Vec<(Value, u64)> = counts.into_iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let non_null = n_rows - n_null;
        let mut bounds = Vec::new();
        if let (Some(first), Some(last)) = (sorted.first(), sorted.last()) {
            bounds.push(first.0.clone());
            let depth = (non_null / HISTOGRAM_BUCKETS as u64).max(1);
            let mut acc = 0u64;
            let mut next_mark = depth;
            for (v, c) in &sorted {
                acc += c;
                while acc >= next_mark && bounds.len() < HISTOGRAM_BUCKETS {
                    bounds.push(v.clone());
                    next_mark += depth;
                }
            }
            bounds.push(last.0.clone());
        }

        ColumnStats {
            n_rows,
            n_null,
            n_distinct,
            mcvs: by_freq,
            bounds,
            freq_of_freq,
        }
    }

    /// Exact fraction of rows whose value occurs `< k` (when `lt`) or
    /// `= k` times in this column.
    pub fn freq_mass_fraction(&self, lt: bool, k: i64) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        let mass: u64 = self
            .freq_of_freq
            .iter()
            .filter(|&&(c, _)| if lt { (c as i64) < k } else { c as i64 == k })
            .map(|&(c, nv)| c * nv)
            .sum();
        mass as f64 / self.n_rows as f64
    }

    /// Fraction of rows retained by `col = value`, from real statistics.
    ///
    /// MCV hits are exact; misses use the classic uniform split of the
    /// non-MCV mass over the non-MCV distinct values.
    pub fn eq_selectivity(&self, value: &Value) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        if value.is_null() {
            return 0.0; // equality with NULL never matches
        }
        if let Some((_, c)) = self.mcvs.iter().find(|(v, _)| v == value) {
            return *c as f64 / self.n_rows as f64;
        }
        let mcv_mass: u64 = self.mcvs.iter().map(|(_, c)| c).sum();
        let rest_rows = (self.n_rows - self.n_null).saturating_sub(mcv_mass);
        let rest_distinct = self.n_distinct.saturating_sub(self.mcvs.len() as u64);
        if rest_distinct == 0 {
            // Every distinct value is an MCV and this one is not among
            // them: it does not occur.
            return 0.0;
        }
        (rest_rows as f64 / rest_distinct as f64) / self.n_rows as f64
    }

    /// Fraction of rows retained by `col = ?` when the constant is
    /// unknown: 1 / n_distinct. This is the *uniformity assumption* the
    /// what-if mode falls back to for hypothetical configurations.
    pub fn eq_selectivity_uniform(&self) -> f64 {
        if self.n_rows == 0 || self.n_distinct == 0 {
            return 0.0;
        }
        let non_null = (self.n_rows - self.n_null) as f64 / self.n_rows as f64;
        non_null / self.n_distinct as f64
    }

    /// Exact frequency of a value if it is in the MCV list.
    pub fn mcv_frequency(&self, value: &Value) -> Option<u64> {
        self.mcvs.iter().find(|(v, _)| v == value).map(|(_, c)| *c)
    }

    /// Fraction of rows with `col < value` (strictly), read off the
    /// equi-depth histogram: each inter-bound interval holds an equal
    /// share of the non-null mass.
    pub fn lt_selectivity(&self, value: &Value) -> f64 {
        if self.n_rows == 0 || self.bounds.len() < 2 {
            return 0.5;
        }
        let non_null = (self.n_rows - self.n_null) as f64 / self.n_rows as f64;
        if *value <= self.bounds[0] {
            return 0.0;
        }
        if *value > *self.bounds.last().expect("non-empty") {
            return non_null;
        }
        // Buckets strictly below the value, plus a half-bucket credit for
        // the bucket the value falls in.
        let below = self.bounds.iter().skip(1).filter(|b| **b < *value).count();
        let buckets = (self.bounds.len() - 1) as f64;
        non_null * ((below as f64 + 0.5) / buckets).min(1.0)
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count at collection time.
    pub n_rows: u64,
    /// Heap pages at collection time.
    pub n_pages: u64,
    /// Per-column statistics, one per schema column.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Collect statistics for every column of `table`.
    pub fn collect(table: &Table) -> Self {
        let columns = (0..table.schema().columns.len())
            .map(|c| ColumnStats::collect(table, c))
            .collect();
        TableStats {
            n_rows: table.n_rows() as u64,
            n_pages: table.n_pages(),
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, ColumnDef, TableSchema};

    fn skewed_table() -> Table {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColType::Int)],
        ));
        // Value 0 appears 1000 times, values 1..=100 once each.
        for _ in 0..1000 {
            t.insert(vec![Value::Int(0)]);
        }
        for i in 1..=100 {
            t.insert(vec![Value::Int(i)]);
        }
        t
    }

    #[test]
    fn mcv_captures_heavy_hitter() {
        let s = ColumnStats::collect(&skewed_table(), 0);
        assert_eq!(s.mcvs[0], (Value::Int(0), 1000));
        assert_eq!(s.n_distinct, 101);
        assert_eq!(s.n_rows, 1100);
    }

    #[test]
    fn eq_selectivity_exact_for_mcv() {
        let s = ColumnStats::collect(&skewed_table(), 0);
        let sel = s.eq_selectivity(&Value::Int(0));
        assert!((sel - 1000.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn eq_selectivity_uniform_differs_under_skew() {
        let s = ColumnStats::collect(&skewed_table(), 0);
        let real = s.eq_selectivity(&Value::Int(0));
        let uni = s.eq_selectivity_uniform();
        // Under skew the uniformity assumption grossly underestimates the
        // heavy hitter -- the estimation error the paper's §5 diagnoses.
        assert!(uni < real / 50.0);
    }

    #[test]
    fn non_mcv_value_uses_residual_mass() {
        // 60 distinct values: the 50 MCVs absorb the heavy ones, the
        // remaining 10 share the residual mass.
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColType::Int)],
        ));
        for i in 0..60i64 {
            let reps = if i < 50 { 10 } else { 2 };
            for _ in 0..reps {
                t.insert(vec![Value::Int(i)]);
            }
        }
        let s = ColumnStats::collect(&t, 0);
        assert_eq!(s.mcvs.len(), 50);
        let sel = s.eq_selectivity(&Value::Int(55));
        let expect = 2.0 / 520.0;
        assert!((sel - expect).abs() < 1e-9, "sel={sel} expect={expect}");
    }

    #[test]
    fn nulls_counted_not_matched() {
        let mut t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColType::Int)],
        ));
        t.insert(vec![Value::Null]);
        t.insert(vec![Value::Int(1)]);
        let s = ColumnStats::collect(&t, 0);
        assert_eq!(s.n_null, 1);
        assert_eq!(s.eq_selectivity(&Value::Null), 0.0);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_span_range() {
        let s = ColumnStats::collect(&skewed_table(), 0);
        assert!(s.bounds.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(s.bounds.first(), Some(&Value::Int(0)));
        assert_eq!(s.bounds.last(), Some(&Value::Int(100)));
    }

    #[test]
    fn empty_table_stats() {
        let t = Table::new(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColType::Int)],
        ));
        let s = ColumnStats::collect(&t, 0);
        assert_eq!(s.n_rows, 0);
        assert_eq!(s.eq_selectivity(&Value::Int(1)), 0.0);
        assert!(s.bounds.is_empty());
    }
}
