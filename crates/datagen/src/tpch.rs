//! TPC-H generator with uniform or Zipf-skewed value distributions.
//!
//! The paper uses a 10 GB TPC-H database plus a skewed variant generated
//! with Chaudhuri & Narasayya's TPC-D skew tool at Zipfian factor 1
//! (§3.2.1). This module generates the full eight-table TPC-H schema at a
//! configurable scale factor, with every value-bearing column (and every
//! foreign-key choice) drawn either uniformly or from Zipf(θ) — the same
//! all-columns-skewed design as the original tool.
//!
//! Cross-table *domains* (`qty`, `date`, `price`, `nationkey`, …) are
//! shared so the SkTH3J/UnTH3J families can enumerate meaningful
//! non-key joins between `lineitem`, `orders`, and `partsupp`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tab_storage::{ColType, ColumnDef, Database, Faults, Table, TableSchema, Value};

use crate::zipf::Zipf;

/// Value distribution for generated columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// All values uniform (standard TPC-H).
    Uniform,
    /// Zipf with the given exponent (the paper uses 1.0).
    Zipf(f64),
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpchParams {
    /// Scale factor; 1.0 corresponds to 6 M lineitem rows. The paper's
    /// 10 GB database is SF 10; the default here is laptop-scale.
    pub scale: f64,
    /// Value distribution.
    pub distribution: Distribution,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchParams {
    fn default() -> Self {
        TpchParams {
            scale: 0.05,
            distribution: Distribution::Uniform,
            seed: 0x5450_4348, // "TPCH"
        }
    }
}

/// The eight TPC-H schemas.
pub fn tpch_schemas() -> Vec<TableSchema> {
    let int = |n: &str| ColumnDef::new(n, ColType::Int);
    let intd = |n: &str, d: &str| ColumnDef::new(n, ColType::Int).domain(d);
    let strd = |n: &str, d: &str| ColumnDef::new(n, ColType::Str).domain(d);
    vec![
        TableSchema::new(
            "region",
            vec![intd("r_regionkey", "regionkey"), strd("r_name", "name")],
        )
        .primary_key(&["r_regionkey"]),
        TableSchema::new(
            "nation",
            vec![
                intd("n_nationkey", "nationkey"),
                strd("n_name", "name"),
                intd("n_regionkey", "regionkey"),
            ],
        )
        .primary_key(&["n_nationkey"])
        .foreign_key(&["n_regionkey"], "region", &["r_regionkey"]),
        TableSchema::new(
            "supplier",
            vec![
                intd("s_suppkey", "suppkey"),
                strd("s_name", "name"),
                intd("s_nationkey", "nationkey"),
                intd("s_acctbal", "price"),
            ],
        )
        .primary_key(&["s_suppkey"])
        .foreign_key(&["s_nationkey"], "nation", &["n_nationkey"]),
        TableSchema::new(
            "part",
            vec![
                intd("p_partkey", "partkey"),
                strd("p_name", "name"),
                strd("p_brand", "brand"),
                strd("p_type", "type"),
                intd("p_size", "size"),
                strd("p_container", "container"),
                intd("p_retailprice", "price"),
            ],
        )
        .primary_key(&["p_partkey"]),
        TableSchema::new(
            "customer",
            vec![
                intd("c_custkey", "custkey"),
                strd("c_name", "name"),
                intd("c_nationkey", "nationkey"),
                strd("c_mktsegment", "segment"),
                intd("c_acctbal", "price"),
            ],
        )
        .primary_key(&["c_custkey"])
        .foreign_key(&["c_nationkey"], "nation", &["n_nationkey"]),
        TableSchema::new(
            "partsupp",
            vec![
                intd("ps_partkey", "partkey"),
                intd("ps_suppkey", "suppkey"),
                intd("ps_availqty", "qty"),
                intd("ps_supplycost", "price"),
            ],
        )
        .primary_key(&["ps_partkey", "ps_suppkey"])
        .foreign_key(&["ps_partkey"], "part", &["p_partkey"])
        .foreign_key(&["ps_suppkey"], "supplier", &["s_suppkey"]),
        TableSchema::new(
            "orders",
            vec![
                intd("o_orderkey", "orderkey"),
                intd("o_custkey", "custkey"),
                strd("o_orderstatus", "status"),
                intd("o_totalprice", "price"),
                intd("o_orderdate", "date"),
                strd("o_orderpriority", "priority"),
                int("o_shippriority"),
            ],
        )
        .primary_key(&["o_orderkey"])
        .foreign_key(&["o_custkey"], "customer", &["c_custkey"]),
        TableSchema::new(
            "lineitem",
            vec![
                intd("l_orderkey", "orderkey"),
                intd("l_partkey", "partkey"),
                intd("l_suppkey", "suppkey"),
                int("l_linenumber"),
                intd("l_quantity", "qty"),
                intd("l_extendedprice", "price"),
                intd("l_discount", "pct"),
                intd("l_tax", "pct"),
                strd("l_returnflag", "flag"),
                strd("l_linestatus", "status"),
                intd("l_shipdate", "date"),
                intd("l_commitdate", "date"),
                intd("l_receiptdate", "date"),
                strd("l_shipmode", "mode"),
            ],
        )
        .primary_key(&["l_orderkey", "l_linenumber"])
        .foreign_key(&["l_orderkey"], "orders", &["o_orderkey"])
        .foreign_key(
            &["l_partkey", "l_suppkey"],
            "partsupp",
            &["ps_partkey", "ps_suppkey"],
        ),
    ]
}

/// Samples ranks from `1..=n` under the configured distribution.
struct Picker {
    dist: Distribution,
}

impl Picker {
    /// Pick a value in `1..=n`. Zipf ranks are scattered over the domain
    /// with a multiplicative hash so the "hot" values are not simply the
    /// smallest ones (matching the skew tool's permuted assignment).
    fn pick(&self, rng: &mut StdRng, n: usize, z: &Zipf) -> i64 {
        match self.dist {
            Distribution::Uniform => rng.random_range(1..=n as i64),
            Distribution::Zipf(_) => {
                let rank = z.sample(rng) as u64;
                (1 + (rank.wrapping_mul(0x9e37_79b9_7f4a_7c15) % n as u64)) as i64
            }
        }
    }
}

/// Generate a TPC-H database.
pub fn generate(params: TpchParams) -> Database {
    generate_checked(params, &Faults::disabled()).expect("no faults armed")
}

/// [`generate`] with fault sites armed: `panic:build:<table>` fires as
/// each finished table is added to the database and `enospc:datagen`
/// fires at the same boundary as an injected I/O error. Deterministic
/// for a fixed seed, so re-running after a caught crash resumes.
pub fn generate_checked(params: TpchParams, faults: &Faults) -> std::io::Result<Database> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let sf = params.scale;
    let n_supplier = ((10_000.0 * sf) as usize).max(20);
    let n_part = ((200_000.0 * sf) as usize).max(100);
    let n_customer = ((150_000.0 * sf) as usize).max(50);
    let n_orders = n_customer * 10;
    let n_lineitem = n_orders * 4;
    let n_partsupp = n_part * 4;

    let theta = match params.distribution {
        Distribution::Uniform => 0.0,
        Distribution::Zipf(t) => t,
    };
    let picker = Picker {
        dist: params.distribution,
    };
    // One Zipf table per domain size we use repeatedly (theta = 0 under
    // the uniform distribution, where Picker bypasses them anyway).
    let z_part = Zipf::new(n_part, theta);
    let z_supp = Zipf::new(n_supplier, theta);
    let z_cust = Zipf::new(n_customer, theta);
    let z_qty = Zipf::new(50, theta);
    let z_date = Zipf::new(2400, theta);
    let z_price = Zipf::new(10_000, theta);
    let z_size = Zipf::new(50, theta);

    let regions = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    let nations = 25usize;
    let brands: Vec<String> = (1..=25).map(|i| format!("Brand#{i:02}")).collect();
    let types: Vec<String> = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
        .iter()
        .flat_map(|a| {
            ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
                .iter()
                .map(move |b| format!("{a} {b}"))
        })
        .collect();
    let containers = [
        "SM CASE",
        "SM BOX",
        "MED BAG",
        "LG JAR",
        "WRAP PKG",
        "JUMBO DRUM",
    ];
    let segments = [
        "AUTOMOBILE",
        "BUILDING",
        "FURNITURE",
        "MACHINERY",
        "HOUSEHOLD",
    ];
    let priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
    let modes = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"];
    let z_small = Zipf::new(25, theta);

    let pick_str = |rng: &mut StdRng, pool: &[&str], z: &Zipf, picker: &Picker| -> Value {
        let i = picker.pick(rng, pool.len(), z) as usize - 1;
        Value::str(pool[i % pool.len()])
    };

    let schemas = tpch_schemas();
    let mut tables: Vec<Table> = schemas.into_iter().map(Table::new).collect();
    let [region, nation, supplier, part, customer, partsupp, orders, lineitem] = &mut tables[..]
    else {
        unreachable!("eight schemas");
    };

    for (i, r) in regions.iter().enumerate() {
        region.insert(vec![Value::Int(i as i64), Value::str(*r)]);
    }
    for i in 0..nations {
        nation.insert(vec![
            Value::Int(i as i64),
            Value::str(format!("NATION {i:02}")),
            Value::Int((i % regions.len()) as i64),
        ]);
    }
    for i in 1..=n_supplier {
        supplier.insert(vec![
            Value::Int(i as i64),
            Value::str(format!("Supplier#{i:09}")),
            Value::Int(picker.pick(&mut rng, nations, &z_small) - 1),
            Value::Int(picker.pick(&mut rng, 10_000, &z_price)),
        ]);
    }
    let brand_refs: Vec<&str> = brands.iter().map(String::as_str).collect();
    let type_refs: Vec<&str> = types.iter().map(String::as_str).collect();
    for i in 1..=n_part {
        part.insert(vec![
            Value::Int(i as i64),
            Value::str(format!(
                "part {:06}",
                picker.pick(&mut rng, n_part, &z_part)
            )),
            pick_str(&mut rng, &brand_refs, &z_small, &picker),
            pick_str(&mut rng, &type_refs, &z_small, &picker),
            Value::Int(picker.pick(&mut rng, 50, &z_size)),
            pick_str(&mut rng, &containers, &z_small, &picker),
            Value::Int(picker.pick(&mut rng, 10_000, &z_price)),
        ]);
    }
    for i in 1..=n_customer {
        customer.insert(vec![
            Value::Int(i as i64),
            Value::str(format!("Customer#{i:09}")),
            Value::Int(picker.pick(&mut rng, nations, &z_small) - 1),
            pick_str(&mut rng, &segments, &z_small, &picker),
            Value::Int(picker.pick(&mut rng, 10_000, &z_price)),
        ]);
    }
    // partsupp: each part has exactly 4 suppliers (TPC-H rule), supplier
    // choice skewed under Zipf.
    for p in 1..=n_part {
        for _ in 0..(n_partsupp / n_part) {
            partsupp.insert(vec![
                Value::Int(p as i64),
                Value::Int(picker.pick(&mut rng, n_supplier, &z_supp)),
                Value::Int(picker.pick(&mut rng, 100, &z_qty)),
                Value::Int(picker.pick(&mut rng, 10_000, &z_price)),
            ]);
        }
    }
    for o in 1..=n_orders {
        orders.insert(vec![
            Value::Int(o as i64),
            Value::Int(picker.pick(&mut rng, n_customer, &z_cust)),
            pick_str(&mut rng, &["O", "F", "P"], &z_small, &picker),
            Value::Int(picker.pick(&mut rng, 10_000, &z_price)),
            Value::Int(picker.pick(&mut rng, 2400, &z_date)),
            pick_str(&mut rng, &priorities, &z_small, &picker),
            Value::Int(0),
        ]);
    }
    // Lineitem is generated order-by-order, so the heap is clustered by
    // l_orderkey -- exactly how dbgen emits it. Each order gets the same
    // number of lines (n_lineitem / n_orders).
    let lines_per_order = (n_lineitem / n_orders).max(1);
    for o in 1..=n_orders {
        for line in 0..lines_per_order {
            let orderkey = o as i64;
            let partkey = picker.pick(&mut rng, n_part, &z_part);
            let ship = picker.pick(&mut rng, 2400, &z_date);
            lineitem.insert(vec![
                Value::Int(orderkey),
                Value::Int(partkey),
                Value::Int(picker.pick(&mut rng, n_supplier, &z_supp)),
                Value::Int(line as i64 + 1),
                Value::Int(picker.pick(&mut rng, 50, &z_qty)),
                Value::Int(picker.pick(&mut rng, 10_000, &z_price)),
                Value::Int(picker.pick(&mut rng, 10, &z_small)),
                Value::Int(picker.pick(&mut rng, 8, &z_small)),
                pick_str(&mut rng, &["A", "N", "R"], &z_small, &picker),
                pick_str(&mut rng, &["O", "F"], &z_small, &picker),
                Value::Int(ship),
                Value::Int(ship + picker.pick(&mut rng, 30, &z_small)),
                Value::Int(ship + picker.pick(&mut rng, 60, &z_small)),
                pick_str(&mut rng, &modes, &z_small, &picker),
            ]);
        }
    }

    let mut db = Database::new();
    for t in tables {
        faults.panic_if_armed(&format!("build:{}", t.schema().name));
        faults.io("datagen")?;
        db.add_table(t);
    }
    db.collect_stats();
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(dist: Distribution) -> Database {
        generate(TpchParams {
            scale: 0.002,
            distribution: dist,
            seed: 11,
        })
    }

    #[test]
    fn cardinality_ratios() {
        let db = small(Distribution::Uniform);
        let rows = |t: &str| db.table(t).unwrap().n_rows();
        assert_eq!(rows("region"), 5);
        assert_eq!(rows("nation"), 25);
        assert_eq!(rows("lineitem"), rows("orders") * 4);
        assert_eq!(rows("partsupp"), rows("part") * 4);
        assert!(db.validate().is_empty());
    }

    #[test]
    fn uniform_vs_zipf_skew_differs() {
        let u = small(Distribution::Uniform);
        let z = small(Distribution::Zipf(1.0));
        let top = |db: &Database, t: &str, c: usize| {
            let s = db.stats(t).unwrap();
            s.columns[c].mcvs[0].1 as f64 / s.columns[c].n_rows as f64
        };
        // l_quantity: uniform top ~ 1/50; zipf top much larger.
        let tu = top(&u, "lineitem", 4);
        let tz = top(&z, "lineitem", 4);
        assert!(tz > 3.0 * tu, "zipf={tz} uniform={tu}");
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let db = small(Distribution::Zipf(1.0));
        let n_orders = db.table("orders").unwrap().n_rows() as i64;
        for (_, row) in db.table("lineitem").unwrap().iter().take(500) {
            let ok = row[0].as_int().unwrap();
            assert!(ok >= 1 && ok <= n_orders);
        }
    }

    #[test]
    fn shared_domains_for_family_joins() {
        let schemas = tpch_schemas();
        let dom = |t: &str, c: &str| {
            schemas
                .iter()
                .find(|s| s.name == t)
                .unwrap()
                .columns
                .iter()
                .find(|x| x.name == c)
                .unwrap()
                .domain
                .clone()
        };
        assert_eq!(
            dom("lineitem", "l_quantity"),
            dom("partsupp", "ps_availqty")
        );
        assert_eq!(dom("lineitem", "l_shipdate"), dom("orders", "o_orderdate"));
        assert_eq!(
            dom("lineitem", "l_extendedprice"),
            dom("orders", "o_totalprice")
        );
    }

    #[test]
    fn deterministic() {
        let a = small(Distribution::Zipf(1.0));
        let b = small(Distribution::Zipf(1.0));
        assert_eq!(
            a.table("lineitem").unwrap().row(33),
            b.table("lineitem").unwrap().row(33)
        );
    }
}
