//! # tab-datagen
//!
//! Deterministic data generators for the `tab-bench` benchmarks:
//!
//! - [`nref`]: a synthetic stand-in for the NREF 1.34 protein database
//!   (real data no longer distributed in the paper's form) preserving
//!   the schema, cardinality ratios, shared domains, and value skew the
//!   benchmark depends on;
//! - [`tpch`]: the eight-table TPC-H schema with uniform or
//!   Zipf(θ)-skewed values (the paper's SkTH / UnTH databases);
//! - [`zipf`]: the Zipf sampler both generators use.

#![warn(missing_docs)]

pub mod nref;
pub mod tpch;
pub mod zipf;

pub use nref::{
    generate as generate_nref, generate_checked as generate_nref_checked, nref_schemas, NrefParams,
};
pub use tpch::{
    generate as generate_tpch, generate_checked as generate_tpch_checked, tpch_schemas,
    Distribution, TpchParams,
};
pub use zipf::Zipf;
