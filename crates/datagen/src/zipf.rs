//! Zipfian sampling for skewed data generation.
//!
//! The paper's skewed TPC-H variant uses Chaudhuri & Narasayya's TPC-D
//! skew generator "with a Zipfian factor of 1" (§3.2.1). `rand` ships no
//! Zipf distribution, so we implement one: ranks `1..=n` are drawn with
//! probability proportional to `1 / rank^theta`, via an inverse-CDF table
//! and binary search — O(n) setup, O(log n) per sample, exact.

use rand::Rng;

/// A Zipf(θ) distribution over ranks `1..=n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Distribution over `1..=n` with exponent `theta >= 0`.
    ///
    /// `theta = 0` degenerates to uniform; `theta = 1` is the paper's
    /// skew factor.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(theta >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw a rank in `1..=n` (rank 1 is the most frequent).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        // First index whose cdf >= u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Theoretical probability of a rank.
    pub fn probability(&self, rank: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&rank));
        let prev = if rank == 1 { 0.0 } else { self.cdf[rank - 2] };
        self.cdf[rank - 1] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = z.sample(&mut rng);
            assert!((1..=100).contains(&s));
        }
    }

    #[test]
    fn theta_one_is_heavily_skewed() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0u32;
        const N: u32 = 100_000;
        for _ in 0..N {
            if z.sample(&mut rng) == 1 {
                head += 1;
            }
        }
        let p1 = z.probability(1);
        // Harmonic(1000) ~ 7.49, so p1 ~ 13%.
        assert!((0.10..0.17).contains(&p1), "p1={p1}");
        let observed = head as f64 / N as f64;
        assert!((observed - p1).abs() < 0.01, "observed={observed} p1={p1}");
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 1..=10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(37, 0.7);
        let total: f64 = (1..=37).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
