//! Synthetic NREF: the paper's protein database, scaled.
//!
//! The real NREF 1.34 (6.5 GB raw, 1.39 M entries) is no longer
//! distributed in the 2004 relational form the paper used, so we generate
//! a synthetic instance that preserves what the benchmark depends on
//! (DESIGN.md §1):
//!
//! - the six-relation schema of §1.1 with its primary keys;
//! - the cardinality *ratios* between relations
//!   (Protein : Source : Taxonomy : Organism : Neighboring_seq :
//!   Identical_seq = 1.1 : 3 : 15.1 : 1.2 : 78.7 : 0.5 M rows);
//! - shared value domains across tables (`nref_id`, `taxon_id`, `name`,
//!   `lineage`) so the query families can enumerate meaningful joins;
//! - heavy skew in value frequencies (protein names and taxa follow
//!   Zipf-like laws in real biological data), which is what separates
//!   the `k1/k2/k3` constants of §3.2.2 by orders of magnitude.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tab_storage::{ColType, ColumnDef, Database, Faults, Table, TableSchema, Value};

use crate::zipf::Zipf;

/// Generation parameters for the synthetic NREF instance.
#[derive(Debug, Clone, Copy)]
pub struct NrefParams {
    /// Number of proteins (the paper's 1.1 M, scaled). All other table
    /// cardinalities follow the paper's ratios.
    pub proteins: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NrefParams {
    fn default() -> Self {
        NrefParams {
            proteins: 10_000,
            seed: 0x4e52_4546, // "NREF"
        }
    }
}

/// The six NREF relations (schema of §1.1).
pub fn nref_schemas() -> Vec<TableSchema> {
    let id = |n: &str| ColumnDef::new(n, ColType::Int).domain("nref_id");
    let taxon = |n: &str| ColumnDef::new(n, ColType::Int).domain("taxon_id");
    let name = |n: &str| ColumnDef::new(n, ColType::Str).domain("name");
    vec![
        TableSchema::new(
            "protein",
            vec![
                id("nref_id"),
                name("p_name"),
                ColumnDef::new("last_updated", ColType::Int).domain("date"),
                ColumnDef::new("sequence", ColType::Str)
                    .not_indexable()
                    .width(200),
                ColumnDef::new("length", ColType::Int).domain("length"),
            ],
        )
        .primary_key(&["nref_id"]),
        TableSchema::new(
            "source",
            vec![
                id("nref_id"),
                ColumnDef::new("p_id", ColType::Int),
                taxon("taxon_id"),
                ColumnDef::new("accession", ColType::Str),
                name("p_name"),
                ColumnDef::new("source", ColType::Str).domain("dbname"),
            ],
        )
        .primary_key(&["nref_id", "p_id"])
        .foreign_key(&["nref_id"], "protein", &["nref_id"]),
        TableSchema::new(
            "taxonomy",
            vec![
                id("nref_id"),
                taxon("taxon_id"),
                ColumnDef::new("lineage", ColType::Str)
                    .domain("lineage")
                    .width(48),
                name("species_name"),
                name("common_name"),
            ],
        )
        .primary_key(&["nref_id", "taxon_id"])
        .foreign_key(&["nref_id"], "protein", &["nref_id"]),
        TableSchema::new(
            "organism",
            vec![
                id("nref_id"),
                ColumnDef::new("ordinal", ColType::Int),
                taxon("taxon_id"),
                name("name"),
            ],
        )
        .primary_key(&["nref_id", "ordinal"])
        .foreign_key(&["nref_id"], "protein", &["nref_id"]),
        TableSchema::new(
            "neighboring_seq",
            vec![
                id("nref_id_1"),
                ColumnDef::new("ordinal", ColType::Int),
                id("nref_id_2"),
                taxon("taxon_id_2"),
                ColumnDef::new("length_2", ColType::Int).domain("length"),
                ColumnDef::new("score", ColType::Int).domain("score"),
                ColumnDef::new("overlap_length", ColType::Int).domain("length"),
                ColumnDef::new("start_1", ColType::Int),
                ColumnDef::new("start_2", ColType::Int),
                ColumnDef::new("end_1", ColType::Int),
                ColumnDef::new("end_2", ColType::Int),
            ],
        )
        .primary_key(&["nref_id_1", "ordinal"])
        .foreign_key(&["nref_id_1"], "protein", &["nref_id"]),
        TableSchema::new(
            "identical_seq",
            vec![
                id("nref_id_1"),
                ColumnDef::new("ordinal", ColType::Int),
                id("nref_id_2"),
                taxon("taxon_id"),
            ],
        )
        .primary_key(&["nref_id_1", "ordinal"])
        .foreign_key(&["nref_id_1"], "protein", &["nref_id"]),
    ]
}

/// Generate a synthetic NREF database.
pub fn generate(params: NrefParams) -> Database {
    generate_checked(params, &Faults::disabled()).expect("no faults armed")
}

/// [`generate`] with fault sites armed: `panic:build:<table>` fires as
/// each finished table is added to the database (simulating a crash
/// mid-build) and `enospc:datagen` fires at the same boundary as an
/// injected I/O error. Generation is deterministic for a fixed seed, so
/// a caller that catches the crash can simply re-run to resume.
pub fn generate_checked(params: NrefParams, faults: &Faults) -> std::io::Result<Database> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n = params.proteins.max(100);

    // Value pools. Taxa and names follow Zipf laws; lineages are shared
    // prefixes of the taxonomic tree, so several taxa map to one lineage.
    // Domain sizes follow real NREF proportions: hundreds of thousands of
    // taxa and protein names at full scale, so equi-joins on these
    // columns have small fan-outs for all but the hot values.
    let n_taxa = (n / 2).max(50);
    let n_names = (n / 5).max(100);
    let n_lineages = (n_taxa / 10).max(10);
    let taxon_z = Zipf::new(n_taxa, 0.9);
    let name_z = Zipf::new(n_names, 1.05);
    let sources = ["SwissProt", "TrEMBL", "RefSeq", "GenPept", "PDB", "PIR-PSD"];

    let lineage_of =
        |taxon: usize| -> Value { Value::str(format!("lin_{:05}", taxon % n_lineages)) };
    let name_of = |rank: usize| -> Value { Value::str(format!("prot name {rank:06}")) };
    let species_of = |taxon: usize| -> Value { Value::str(format!("species {taxon:05}")) };

    let schemas = nref_schemas();
    let mut tables: Vec<Table> = schemas.into_iter().map(Table::new).collect();
    let [protein, source, taxonomy, organism, neighboring, identical] = &mut tables[..] else {
        unreachable!("six schemas");
    };

    // All child tables are generated protein-by-protein, so their heaps
    // are *clustered* by nref_id -- as the real NREF load files are
    // (the dump is emitted per entry). Clustering is what makes index
    // fetches on nref-correlated columns touch few heap pages.
    let score_z = Zipf::new(1000, 1.0);
    for i in 0..n {
        let nref = i as i64;
        protein.insert(vec![
            Value::Int(nref),
            name_of(name_z.sample(&mut rng)),
            Value::Int(rng.random_range(730_000..731_000)),
            Value::str("MKV..."),
            Value::Int(rng.random_range(50..3000)),
        ]);

        // source: 30 rows per 11 proteins (paper ratio), varying 2..=3.
        let n_src = if i % 11 < 8 { 3 } else { 2 };
        for j in 0..n_src {
            source.insert(vec![
                Value::Int(nref),
                Value::Int(j as i64),
                Value::Int(taxon_z.sample(&mut rng) as i64),
                Value::str(format!("AC{i:06}{j}")),
                name_of(name_z.sample(&mut rng)),
                Value::str(sources[rng.random_range(0..sources.len())]),
            ]);
        }

        // taxonomy: 151 rows per 11 proteins, varying 13..=14.
        let n_tax = if i % 11 < 8 { 14 } else { 13 };
        for _ in 0..n_tax {
            let taxon = taxon_z.sample(&mut rng);
            taxonomy.insert(vec![
                Value::Int(nref),
                Value::Int(taxon as i64),
                lineage_of(taxon),
                species_of(taxon),
                name_of(name_z.sample(&mut rng)),
            ]);
        }

        // organism: 12 rows per 11 proteins.
        let n_org = if i % 11 == 0 { 2 } else { 1 };
        for j in 0..n_org {
            let taxon = taxon_z.sample(&mut rng);
            organism.insert(vec![
                Value::Int(nref),
                Value::Int(j as i64),
                Value::Int(taxon as i64),
                species_of(taxon),
            ]);
        }

        // neighboring_seq: ~71 neighbors per protein on average, with a
        // long-tailed per-protein count; neighbor ids cluster around the
        // source protein (sequence similarity is local in generated id
        // space), scores skewed.
        // 1574 rows per 22 proteins (the paper's 78.7M : 1.1M), with a
        // long-tailed per-protein neighbor count.
        let n_nbr = match i % 22 {
            0 => 398,
            1..=3 => 20,
            _ => 62,
        };
        for j in 0..n_nbr {
            let delta = rng.random_range(1..200i64);
            let nref2 = (nref + delta) % n as i64;
            let s1 = rng.random_range(0..2000i64);
            let s2 = rng.random_range(0..2000i64);
            let olen = rng.random_range(20..1500i64);
            neighboring.insert(vec![
                Value::Int(nref),
                Value::Int(j as i64),
                Value::Int(nref2),
                Value::Int(taxon_z.sample(&mut rng) as i64),
                Value::Int(rng.random_range(50..3000)),
                Value::Int(score_z.sample(&mut rng) as i64),
                Value::Int(olen),
                Value::Int(s1),
                Value::Int(s2),
                Value::Int(s1 + olen),
                Value::Int(s2 + olen),
            ]);
        }

        // identical_seq: ~0.45 per protein.
        if (i * 5) % 11 < 5 {
            let nref2 = rng.random_range(0..n) as i64;
            identical.insert(vec![
                Value::Int(nref),
                Value::Int(0),
                Value::Int(nref2),
                Value::Int(taxon_z.sample(&mut rng) as i64),
            ]);
        }
    }

    let mut db = Database::new();
    for t in tables {
        faults.panic_if_armed(&format!("build:{}", t.schema().name));
        faults.io("datagen")?;
        db.add_table(t);
    }
    db.collect_stats();
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_paper() {
        let db = generate(NrefParams {
            proteins: 2000,
            seed: 1,
        });
        let rows = |t: &str| db.table(t).unwrap().n_rows() as f64;
        let p = rows("protein");
        assert!((rows("taxonomy") / p - 151.0 / 11.0).abs() < 0.5);
        assert!((rows("neighboring_seq") / p - 787.0 / 11.0).abs() < 0.5);
        assert!((rows("source") / p - 30.0 / 11.0).abs() < 0.2);
        assert!(rows("identical_seq") < p);
    }

    #[test]
    fn schema_is_valid_and_stats_collected() {
        let db = generate(NrefParams {
            proteins: 500,
            seed: 2,
        });
        assert!(db.validate().is_empty());
        assert!(db.stats("taxonomy").is_some());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate(NrefParams {
            proteins: 300,
            seed: 9,
        });
        let b = generate(NrefParams {
            proteins: 300,
            seed: 9,
        });
        let ta = a.table("taxonomy").unwrap();
        let tb = b.table("taxonomy").unwrap();
        assert_eq!(ta.n_rows(), tb.n_rows());
        assert_eq!(ta.row(17), tb.row(17));
    }

    #[test]
    fn names_are_skewed() {
        let db = generate(NrefParams {
            proteins: 3000,
            seed: 3,
        });
        let s = db.stats("protein").unwrap();
        let pname = &s.columns[1];
        let top = pname.mcvs[0].1 as f64;
        let avg = pname.n_rows as f64 / pname.n_distinct as f64;
        assert!(
            top > 10.0 * avg,
            "top name should dwarf average: top={top} avg={avg}"
        );
    }

    #[test]
    fn shared_domains_enable_cross_table_joins() {
        let schemas = nref_schemas();
        let dom = |t: usize, c: &str| {
            schemas[t]
                .columns
                .iter()
                .find(|x| x.name == c)
                .unwrap()
                .domain
                .clone()
        };
        assert_eq!(dom(1, "taxon_id"), dom(2, "taxon_id"));
        assert_eq!(dom(0, "p_name"), dom(1, "p_name"));
        assert_eq!(dom(4, "nref_id_2"), dom(0, "nref_id"));
    }

    #[test]
    fn sequence_column_not_indexable() {
        let schemas = nref_schemas();
        let seq = schemas[0]
            .columns
            .iter()
            .find(|c| c.name == "sequence")
            .unwrap();
        assert!(!seq.indexable);
    }
}
