//! Differential test for the late-materialization executor: queries
//! drawn from every benchmark family are evaluated both by the
//! brute-force interpreter (`engine::naive`, a full cartesian-product
//! odometer) and by the planned executor, under the `P` and `1C`
//! configurations. Result rows must be identical (sorted, when the
//! query leaves order unspecified) and the executor's cost-unit total
//! must be exactly reproducible: a second run charges bit-identical
//! units, and a budget set to that exact total never trips.
//!
//! The interpreter is O(∏ |rel|), so every table is truncated to a few
//! dozen rows first; the families are enumerated against the truncated
//! database so template constants still reference live values.

use tab_bench::advisor::{one_column_configuration, p_configuration};
use tab_bench::datagen::{generate_nref, generate_tpch, Distribution, NrefParams, TpchParams};
use tab_bench::engine::{bind, naive, ChargePolicy, ExecOpts, PoolOpts, Session};
use tab_bench::families::Family;
use tab_bench::storage::{BuiltConfiguration, Database, Parallelism, Table};

/// Cap every table at `cap` rows (heap-prefix truncation) so the
/// brute-force cartesian product stays tractable.
fn truncate_db(db: &Database, cap: usize) -> Database {
    let mut out = Database::new();
    for t in db.tables() {
        let mut nt = Table::new(t.schema().clone());
        for (_, row) in t.iter().take(cap) {
            nt.insert(row.to_vec());
        }
        out.add_table(nt);
    }
    out.collect_stats();
    out
}

/// Queries per family to push through the interpreter.
const QUERIES_PER_FAMILY: usize = 4;

fn check_family(family: Family, db: &Database) {
    let p = BuiltConfiguration::build(p_configuration(db, "diff_P"), db);
    let c1 = BuiltConfiguration::build(one_column_configuration(db, "diff_1C"), db);
    let queries = family.enumerate(db);
    assert!(
        !queries.is_empty(),
        "{} enumerates no queries on the truncated database",
        family.name()
    );
    let step = (queries.len() / QUERIES_PER_FAMILY).max(1);
    for (qi, q) in queries
        .iter()
        .step_by(step)
        .take(QUERIES_PER_FAMILY)
        .enumerate()
    {
        let bound = bind(q, db).expect("family query binds");
        let mut expect = naive::evaluate(&bound, db);
        if q.order_by.is_empty() {
            expect.sort();
        }
        for (cname, built) in [("P", &p), ("1C", &c1)] {
            let session = Session::new(db, built);
            let r1 = session.run(q, None).expect("family query executes");
            let mut got = r1.rows.clone().expect("unbounded run returns rows");
            if q.order_by.is_empty() {
                got.sort();
            }
            assert_eq!(
                expect,
                got,
                "{} query {qi} under {cname} disagrees with naive:\n{q}",
                family.name()
            );
            // Cost-unit totals are exactly reproducible, and a budget
            // equal to the actual total never trips.
            let units = r1.outcome.units().expect("unbounded run completes");
            let r2 = session.run(q, Some(units)).expect("re-run executes");
            assert!(
                !r2.outcome.is_timeout(),
                "{} query {qi} under {cname} timed out at its own cost",
                family.name()
            );
            assert_eq!(
                r2.outcome.units(),
                Some(units),
                "{} query {qi} under {cname}: cost-unit total not reproducible",
                family.name()
            );
            // Morsel-driven executor: every (query-threads, morsel-rows)
            // pairing — and the scalar predicate path — must reproduce
            // the same rows and bit-identical cost units as the default
            // sequential run above.
            for (threads, morsel_rows, vectorize) in [
                (1, 64, true),
                (2, 64, true),
                (2, 4096, true),
                (8, 64, true),
                (8, 4096, true),
                (2, 64, false),
            ] {
                let exec = ExecOpts {
                    par: Parallelism::new(threads),
                    morsel_rows,
                    vectorize,
                    ..ExecOpts::default()
                };
                let rp = Session::new(db, built)
                    .with_exec(exec)
                    .run(q, None)
                    .expect("morsel variant executes");
                let mut got = rp.rows.clone().expect("unbounded run returns rows");
                if q.order_by.is_empty() {
                    got.sort();
                }
                assert_eq!(
                    expect,
                    got,
                    "{} query {qi} under {cname} diverges at {threads} query-threads, \
                     morsel {morsel_rows}, vectorize={vectorize}:\n{q}",
                    family.name()
                );
                assert_eq!(
                    rp.outcome.units(),
                    Some(units),
                    "{} query {qi} under {cname}: cost units drift at {threads} \
                     query-threads, morsel {morsel_rows}, vectorize={vectorize}",
                    family.name()
                );
            }
            // Tiny buffer pool at the 8-frame floor in Metered charge
            // mode: the clock hand evicts on nearly every fetch, and
            // neither the rows nor the bit-identical unit total may
            // move — eviction is bookkeeping, never semantics.
            for threads in [1, 4] {
                let mut pool = PoolOpts::new(8);
                pool.policy = ChargePolicy::Metered;
                let exec = ExecOpts {
                    par: Parallelism::new(threads),
                    morsel_rows: 64,
                    pool: Some(pool),
                    ..ExecOpts::default()
                };
                let rp = Session::new(db, built)
                    .with_exec(exec)
                    .run(q, None)
                    .expect("tiny-pool variant executes");
                let mut got = rp.rows.clone().expect("unbounded run returns rows");
                if q.order_by.is_empty() {
                    got.sort();
                }
                assert_eq!(
                    expect,
                    got,
                    "{} query {qi} under {cname} diverges with an 8-frame pool \
                     at {threads} query-threads:\n{q}",
                    family.name()
                );
                assert_eq!(
                    rp.outcome.units(),
                    Some(units),
                    "{} query {qi} under {cname}: metered units drift with an \
                     8-frame pool at {threads} query-threads",
                    family.name()
                );
            }
        }
    }
}

#[test]
fn nref_families_match_naive() {
    let nref = truncate_db(
        &generate_nref(NrefParams {
            proteins: 100,
            seed: 0xD1FF,
        }),
        80,
    );
    check_family(Family::Nref2J, &nref);
    check_family(Family::Nref3J, &nref);
}

#[test]
fn tpch_families_match_naive() {
    let skew = truncate_db(
        &generate_tpch(TpchParams {
            scale: 0.0,
            distribution: Distribution::Zipf(1.0),
            seed: 0xD1FF + 1,
        }),
        80,
    );
    check_family(Family::SkTH3J, &skew);
    check_family(Family::SkTH3Js, &skew);
    let unif = truncate_db(
        &generate_tpch(TpchParams {
            scale: 0.0,
            distribution: Distribution::Uniform,
            seed: 0xD1FF + 2,
        }),
        80,
    );
    check_family(Family::UnTH3J, &unif);
}
