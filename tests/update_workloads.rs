//! §4.4 as an executable experiment: mixed query+insert workloads shift
//! the balance between `1C` (fast queries, slow inserts) and lighter
//! configurations — and the break-even arithmetic must match what the
//! mixed-workload executor actually measures.

use tab_bench::eval::{
    build_1c, build_p, per_insert_cost, run_update_workload, Suite, SuiteParams, WorkloadOp,
};
use tab_bench::families::Family;
use tab_bench::sqlq::Insert;
use tab_bench::storage::{BuiltConfiguration, Value};

fn suite() -> Suite {
    Suite::build(SuiteParams {
        nref_proteins: 1_000,
        tpch_scale: 0.004,
        workload_size: 10,
        timeout_units: 2_000.0,
        seed: 13,
        ..SuiteParams::small()
    })
}

/// A synthetic neighboring_seq row beyond the generated id range.
fn ns_insert(i: i64) -> Insert {
    Insert {
        table: "neighboring_seq".into(),
        values: vec![
            Value::Int(1_000_000 + i),
            Value::Int(0),
            Value::Int(i % 997),
            Value::Int(i % 53),
            Value::Int(100),
            Value::Int(10),
            Value::Int(50),
            Value::Int(0),
            Value::Int(0),
            Value::Int(50),
            Value::Int(50),
        ],
    }
}

#[test]
fn mixed_workload_runs_and_charges_maintenance() {
    let s = suite();
    let mut db = s.nref;
    let label = "NREF";
    let mut built = build_1c(&db, label);
    let queries = {
        let p = build_p(&db, label);
        let suite_ref = Suite {
            params: s.params,
            nref: db,
            skth: s.skth,
            unth: s.unth,
        };
        let w = tab_bench::eval::prepare_workload(&suite_ref, Family::Nref2J, &p);
        db = suite_ref.nref;
        w
    };
    let mut ops: Vec<WorkloadOp> = Vec::new();
    for (i, q) in queries.iter().take(4).enumerate() {
        ops.push(WorkloadOp::Insert(ns_insert(i as i64)));
        ops.push(WorkloadOp::Query(q.clone()));
    }
    let before_rows = db.table("neighboring_seq").unwrap().n_rows();
    let run = run_update_workload(&mut db, &mut built, &ops, s.params.timeout_units);
    assert_eq!(run.inserts, 4);
    assert_eq!(run.query_outcomes.len(), 4);
    assert!(run.insert_units > 0.0);
    assert_eq!(
        db.table("neighboring_seq").unwrap().n_rows(),
        before_rows + 4
    );
    assert!(run.total_lower_bound_sim_seconds() > 0.0);
}

#[test]
fn measured_insert_cost_matches_model() {
    let s = suite();
    let mut db = s.nref;
    let mut built = build_1c(&db, "NREF");
    let modeled = per_insert_cost(&built, "neighboring_seq");
    let run = run_update_workload(
        &mut db,
        &mut built,
        &(0..10)
            .map(|i| WorkloadOp::Insert(ns_insert(i)))
            .collect::<Vec<_>>(),
        s.params.timeout_units,
    );
    let measured = run.insert_units / 10.0;
    // The model charges the same descent+leaf structure the executor
    // does; tree heights may drift by a level as the index grows.
    assert!(
        (measured - modeled).abs() / modeled < 0.25,
        "modeled {modeled} vs measured {measured}"
    );
}

#[test]
fn one_c_inserts_cost_more_than_p_inserts_when_executed() {
    let s = suite();
    let ops: Vec<WorkloadOp> = (0..20).map(|i| WorkloadOp::Insert(ns_insert(i))).collect();

    let mut db1 = tab_bench::datagen::generate_nref(tab_bench::datagen::NrefParams {
        proteins: 1_000,
        seed: 13,
    });
    let mut c1: BuiltConfiguration = build_1c(&db1, "NREF");
    let run_1c = run_update_workload(&mut db1, &mut c1, &ops, s.params.timeout_units);

    let mut db2 = tab_bench::datagen::generate_nref(tab_bench::datagen::NrefParams {
        proteins: 1_000,
        seed: 13,
    });
    let mut p = build_p(&db2, "NREF");
    let run_p = run_update_workload(&mut db2, &mut p, &ops, s.params.timeout_units);

    assert!(
        run_1c.insert_units > 2.0 * run_p.insert_units,
        "1C insert maintenance ({}) should far exceed P's ({})",
        run_1c.insert_units,
        run_p.insert_units
    );
}
