//! The crash-consistency contract end to end: a repro run killed by an
//! injected fault (poisoned grid cell, ENOSPC on an artifact, torn
//! trace) exits with a typed error instead of panicking, leaves a
//! `tab-checkpoint-v1` journal behind, and a rerun with `--resume`
//! produces outputs byte-identical to a never-interrupted run — at any
//! thread count, including resuming at a different thread count than
//! the crash happened at.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use tab_bench::datagen::{generate_nref, generate_nref_checked, NrefParams};
use tab_bench::engine::{ChargePolicy, EngineState, SharedEngine};
use tab_bench::eval::SuiteParams;
use tab_bench::sqlq::{parse_statement, Statement};
use tab_bench::storage::{par_map, par_map_catch, FaultPlan, Faults, Parallelism};
use tab_bench_harness::repro::{run_all, ReproConfig, ReproError};

fn tiny(out: &Path, threads: usize) -> ReproConfig {
    ReproConfig {
        params: SuiteParams {
            nref_proteins: 400,
            tpch_scale: 0.002,
            workload_size: 8,
            timeout_units: 500.0,
            seed: 7,
            ..SuiteParams::small()
        }
        .with_threads(threads),
        out_dir: out.to_path_buf(),
        trace: None,
        faults: None,
        resume: false,
    }
}

/// Read every output file, excluding `timings.json` and the `BENCH_*`
/// records — both hold wall-clock, which varies run to run.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read output dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "timings.json" || name.starts_with("BENCH_") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).expect("read output file"));
    }
    out
}

fn assert_same_outputs(got_dir: &Path, want: &BTreeMap<String, Vec<u8>>, label: &str) {
    let got = snapshot(got_dir);
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "{label}: different output file sets"
    );
    for (name, bytes) in want {
        assert_eq!(
            &got[name], bytes,
            "{label}: {name} differs from a clean run"
        );
    }
}

#[test]
fn poisoned_cell_then_resume_is_byte_identical_across_thread_counts() {
    let base = std::env::temp_dir().join(format!("tab_fault_poison_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let clean_dir = base.join("clean");
    run_all(&tiny(&clean_dir, 1)).expect("clean baseline run");
    let want = snapshot(&clean_dir);
    assert!(
        !clean_dir.join("repro.checkpoint.jsonl").exists(),
        "a successful run must remove its checkpoint journal"
    );

    // Crash at a mid-grid cell, then resume — at 1 and at 4 threads.
    // The resume deliberately uses a different thread count than the
    // crash (the journal fingerprint excludes parallelism).
    for (crash_threads, resume_threads) in [(1, 4), (4, 1)] {
        let dir = base.join(format!("t{crash_threads}"));
        let plan = FaultPlan::parse("panic:cell:NREF3J/NREF_1C").expect("spec");
        let mut cfg = tiny(&dir, crash_threads).with_faults(plan);
        let err = run_all(&cfg).expect_err("poisoned cell must fail the run");
        match &err {
            ReproError::Grid { message } => {
                assert!(message.contains("NREF3J/NREF_1C"), "{message}");
                assert!(message.contains("cell:NREF3J/NREF_1C"), "{message}");
            }
            other => panic!("expected Grid error, got: {other}"),
        }
        let journal = dir.join("repro.checkpoint.jsonl");
        assert!(journal.exists(), "failed run must leave its journal");
        let text = std::fs::read_to_string(&journal).expect("journal");
        assert!(
            text.starts_with("{\"schema\":\"tab-checkpoint-v1\""),
            "{text}"
        );
        assert!(
            !text.contains("\"family\":\"NREF3J\",\"config\":\"NREF_1C\""),
            "the poisoned cell must not be journaled:\n{text}"
        );
        assert!(
            text.contains("\"family\":\"NREF3J\",\"config\":\"NREF_P\""),
            "sibling cells of the poisoned one must be journaled:\n{text}"
        );

        cfg.faults = None;
        cfg.resume = true;
        cfg.params = cfg.params.with_threads(resume_threads);
        let summary = run_all(&cfg).expect("resume completes the run");
        assert!(summary.claims.len() > 5, "claims recomputed on resume");
        assert!(!journal.exists(), "journal removed after successful resume");
        assert_same_outputs(
            &dir,
            &want,
            &format!("crash@{crash_threads}/resume@{resume_threads}"),
        );
    }

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn injected_enospc_names_the_artifact_and_resume_recovers() {
    let base = std::env::temp_dir().join(format!("tab_fault_enospc_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let clean_dir = base.join("clean");
    run_all(&tiny(&clean_dir, 2)).expect("clean baseline run");
    let want = snapshot(&clean_dir);

    let dir = base.join("faulted");
    let plan = FaultPlan::parse("enospc:claims.csv").expect("spec");
    let mut cfg = tiny(&dir, 2).with_faults(plan);
    let err = run_all(&cfg).expect_err("full disk on claims.csv must fail the run");
    match &err {
        ReproError::Artifact { path, source } => {
            assert!(
                path.ends_with("claims.csv"),
                "wrong artifact: {}",
                path.display()
            );
            assert!(source.to_string().contains("claims.csv"), "{source}");
        }
        other => panic!("expected Artifact error, got: {other}"),
    }
    // The atomic write discipline: no claims.csv, complete or torn.
    assert!(!dir.join("claims.csv").exists());
    assert!(!dir.join("claims.csv.tmp").exists());
    // The grid finished before the write failed, so every cell is
    // journaled and the resume replays all of them.
    assert!(dir.join("repro.checkpoint.jsonl").exists());

    cfg.faults = None;
    cfg.resume = true;
    run_all(&cfg).expect("resume rewrites the missing artifacts");
    assert_same_outputs(&dir, &want, "enospc-resume");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn torn_trace_fails_after_artifacts_but_before_journal_discard() {
    let base = std::env::temp_dir().join(format!("tab_fault_trace_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let dir = base.join("out");
    let trace_path = base.join("trace.jsonl");
    let plan = FaultPlan::parse("truncate:trace:5").expect("spec");
    let mut cfg = tiny(&dir, 2)
        .with_trace(trace_path.clone())
        .with_faults(plan);
    let err = run_all(&cfg).expect_err("torn trace must fail the run");
    match &err {
        ReproError::TraceSink { message, .. } => {
            assert!(message.contains("after 5 lines"), "{message}")
        }
        other => panic!("expected TraceSink error, got: {other}"),
    }
    // The failure is ordered for recoverability: artifacts are written,
    // the partial trace stays at .tmp (never the final path), and the
    // journal survives so the trace can be regenerated via --resume.
    assert!(dir.join("claims.csv").exists());
    assert!(!trace_path.exists());
    let tmp = base.join("trace.jsonl.tmp");
    assert!(tmp.exists(), "partial trace preserved for inspection");
    let partial = std::fs::read_to_string(&tmp).expect("partial trace");
    assert_eq!(partial.lines().count(), 6, "5 whole lines + the torn tail");
    assert!(!partial.ends_with('\n'), "tail line is torn mid-write");
    assert!(dir.join("repro.checkpoint.jsonl").exists());

    cfg.faults = None;
    cfg.resume = true;
    run_all(&cfg).expect("resume with a healthy sink");
    // The resumed run replays every journaled cell, so its trace holds
    // advisor and span events but no re-executed query events; what
    // matters is that it published atomically to the final path.
    assert!(trace_path.exists());
    let trace = std::fs::read_to_string(&trace_path).expect("published trace");
    assert!(trace
        .lines()
        .all(|l| l.starts_with("{\"schema\":\"tab-trace-v1\"")));

    std::fs::remove_dir_all(&base).ok();
}

/// A panic inside an intra-query morsel worker (the `morsel:` fault
/// site) unwinds through the executor's `par_map`, is caught by the
/// grid's `par_map_catch` like a `cell:` poison, and `--resume` — at
/// default executor settings — recovers byte-identically to a clean
/// run. This is the crash-consistency contract extended below the
/// query boundary.
#[test]
fn poisoned_morsel_worker_then_resume_is_byte_identical() {
    let base = std::env::temp_dir().join(format!("tab_fault_morsel_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let clean_dir = base.join("clean");
    run_all(&tiny(&clean_dir, 1)).expect("clean baseline run");
    let want = snapshot(&clean_dir);

    // Crash inside a morsel worker while the executor runs 2 query
    // threads over 64-row morsels.
    let dir = base.join("crash");
    let plan = FaultPlan::parse("panic:morsel:NREF3J/NREF_1C").expect("spec");
    let mut cfg = tiny(&dir, 2).with_faults(plan);
    cfg.params = cfg.params.with_query_threads(2).with_morsel_rows(64);
    let err = run_all(&cfg).expect_err("poisoned morsel must fail the run");
    match &err {
        ReproError::Grid { message } => {
            assert!(message.contains("morsel:NREF3J/NREF_1C"), "{message}");
        }
        other => panic!("expected Grid error, got: {other}"),
    }
    let journal = dir.join("repro.checkpoint.jsonl");
    assert!(journal.exists(), "failed run must leave its journal");
    let text = std::fs::read_to_string(&journal).expect("journal");
    assert!(
        !text.contains("\"family\":\"NREF3J\",\"config\":\"NREF_1C\""),
        "the poisoned cell must not be journaled:\n{text}"
    );
    assert!(
        text.contains("\"family\":\"NREF3J\",\"config\":\"NREF_P\""),
        "sibling cells of the poisoned one must be journaled:\n{text}"
    );

    // Resume at default executor settings (sequential, 4096-row
    // morsels): the journal fingerprint excludes intra-query
    // parallelism exactly like it excludes the grid thread count.
    cfg.faults = None;
    cfg.resume = true;
    cfg.params = tiny(&dir, 1).params;
    run_all(&cfg).expect("resume completes the run");
    assert!(!journal.exists(), "journal removed after successful resume");
    assert_same_outputs(&dir, &want, "morsel-crash-resume");

    std::fs::remove_dir_all(&base).ok();
}

/// Like [`tiny`], but with an 8-frame buffer pool in Observed charge
/// mode — small enough that hash builds overflow the pool's spill
/// threshold and dirty pages get written through the pager, exercising
/// the `spill` and `evict:` fault sites on real traffic.
fn tiny_pooled(out: &Path, threads: usize) -> ReproConfig {
    let mut cfg = tiny(out, threads);
    cfg.params = cfg
        .params
        .with_buffer_pages(8)
        .with_charge(ChargePolicy::Observed);
    cfg
}

/// Summed value of a numeric field across every cell line of a
/// `BENCH_io.json` document.
fn io_field_total(doc: &str, key: &str) -> u64 {
    doc.lines()
        .filter_map(|l| {
            let (_, rest) = l.split_once(&format!("\"{key}\": "))?;
            rest.split([',', '}']).next()?.trim().parse::<u64>().ok()
        })
        .sum()
}

/// The `enospc:spill` fault site: a full disk at a dirty-page spill
/// write crashes the run mid-grid; the journal survives (with the
/// per-cell pool traffic in its `io` fields) and `--resume` recovers
/// byte-identically — including the wall-clock-free `BENCH_io.json`,
/// whose totals for replayed cells come straight from the journal.
#[test]
fn injected_spill_enospc_then_resume_is_byte_identical() {
    let base = std::env::temp_dir().join(format!("tab_fault_spill_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let clean_dir = base.join("clean");
    run_all(&tiny_pooled(&clean_dir, 1)).expect("clean pooled baseline run");
    let want = snapshot(&clean_dir);
    let want_io = std::fs::read(clean_dir.join("BENCH_io.json")).expect("BENCH_io.json");
    let io_text = String::from_utf8(want_io.clone()).expect("utf8");
    // The premise of this test: the 8-frame run actually spilled.
    assert!(
        io_field_total(&io_text, "spill_bytes_written") > 0,
        "8-frame pooled run did not spill — the spill site never fires:\n{io_text}"
    );
    assert!(io_field_total(&io_text, "evictions") > 0, "{io_text}");

    let dir = base.join("crash");
    let plan = FaultPlan::parse("enospc:spill:2").expect("spec");
    let mut cfg = tiny_pooled(&dir, 1).with_faults(plan);
    let err = run_all(&cfg).expect_err("full disk at a spill write must fail the run");
    match &err {
        ReproError::Grid { message } => {
            assert!(message.contains("spill"), "{message}");
        }
        other => panic!("expected Grid error, got: {other}"),
    }
    // The journal materializes on the first completed cell; if the
    // second spill write already lands in the first cell, the crash
    // leaves nothing behind and `--resume` degrades to a plain run —
    // both are valid crash points, and both must recover.
    let journal = dir.join("repro.checkpoint.jsonl");
    if journal.exists() {
        let text = std::fs::read_to_string(&journal).expect("journal");
        assert!(
            text.contains("\"io\":\""),
            "pooled journal cells must carry their pool traffic:\n{text}"
        );
    }

    cfg.faults = None;
    cfg.resume = true;
    // Resume at a different thread count than the crash: pool traffic
    // is a pure function of the logical access stream, so the journal
    // fingerprint may keep excluding parallelism.
    cfg.params = cfg.params.with_threads(4);
    run_all(&cfg).expect("resume completes the run");
    assert!(!journal.exists(), "journal removed after successful resume");
    assert_same_outputs(&dir, &want, "spill-enospc-resume");
    let got_io = std::fs::read(dir.join("BENCH_io.json")).expect("BENCH_io.json");
    assert_eq!(
        got_io, want_io,
        "BENCH_io.json after resume differs from a clean run"
    );

    std::fs::remove_dir_all(&base).ok();
}

/// The `panic:evict:<family>/<config>` fault site: a crash at a buffer
/// pool eviction inside one cell — after other cells have already
/// spilled pages — is caught like a `cell:` poison, journaled around,
/// and recovered byte-identically by `--resume`.
#[test]
fn poisoned_eviction_then_resume_is_byte_identical() {
    let base = std::env::temp_dir().join(format!("tab_fault_evict_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let clean_dir = base.join("clean");
    run_all(&tiny_pooled(&clean_dir, 1)).expect("clean pooled baseline run");
    let want = snapshot(&clean_dir);
    let want_io = std::fs::read(clean_dir.join("BENCH_io.json")).expect("BENCH_io.json");

    let dir = base.join("crash");
    let plan = FaultPlan::parse("panic:evict:NREF3J/NREF_1C").expect("spec");
    let mut cfg = tiny_pooled(&dir, 4).with_faults(plan);
    let err = run_all(&cfg).expect_err("poisoned eviction must fail the run");
    match &err {
        ReproError::Grid { message } => {
            assert!(message.contains("evict:NREF3J/NREF_1C"), "{message}");
        }
        other => panic!("expected Grid error, got: {other}"),
    }
    let journal = dir.join("repro.checkpoint.jsonl");
    assert!(journal.exists(), "failed run must leave its journal");
    let text = std::fs::read_to_string(&journal).expect("journal");
    assert!(
        !text.contains("\"family\":\"NREF3J\",\"config\":\"NREF_1C\""),
        "the poisoned cell must not be journaled:\n{text}"
    );
    assert!(
        text.contains("\"family\":\"NREF2J\",\"config\":\"NREF_P\""),
        "cells that completed before the poison must be journaled:\n{text}"
    );
    assert!(
        text.contains("\"io\":\""),
        "pooled journal cells must carry their pool traffic:\n{text}"
    );

    cfg.faults = None;
    cfg.resume = true;
    cfg.params = cfg.params.with_threads(1);
    run_all(&cfg).expect("resume completes the run");
    assert!(!journal.exists(), "journal removed after successful resume");
    assert_same_outputs(&dir, &want, "evict-poison-resume");
    let got_io = std::fs::read(dir.join("BENCH_io.json")).expect("BENCH_io.json");
    assert_eq!(
        got_io, want_io,
        "BENCH_io.json after resume differs from a clean run"
    );

    std::fs::remove_dir_all(&base).ok();
}

/// The ISSUE's panic-isolation requirement at the `par_map` layer: one
/// poisoned job yields an `Err` slot under `par_map_catch` while its
/// siblings complete, and `par_map` itself re-raises.
#[test]
fn par_map_panic_isolation() {
    let items: Vec<u32> = (0..60).collect();
    for threads in [1, 4] {
        let got = par_map_catch(Parallelism::new(threads), &items, |&x| {
            if x == 17 {
                panic!("poisoned job {x}");
            }
            x + 1
        });
        assert_eq!(got.len(), items.len());
        for (i, r) in got.iter().enumerate() {
            match r {
                Ok(v) => assert_eq!(*v, i as u32 + 1, "threads={threads}"),
                Err(p) => {
                    assert_eq!(i, 17, "threads={threads}");
                    assert_eq!(p.message, "poisoned job 17");
                }
            }
        }
    }
    let panicked = std::panic::catch_unwind(|| {
        par_map(Parallelism::new(4), &items, |&x| {
            assert!(x != 17, "boom");
            x
        })
    });
    assert!(panicked.is_err(), "par_map re-raises job panics");
}

/// A datagen crash (`panic:build:<table>`) or injected ENOSPC
/// (`enospc:datagen`) is recoverable by construction: generators are
/// deterministic for a fixed seed, so a rerun with the fault disarmed
/// produces a database bit-identical to one that never crashed.
#[test]
fn datagen_crash_then_rerun_is_bit_identical() {
    let params = NrefParams {
        proteins: 300,
        seed: 11,
    };
    // The crash: the panic site names the table being added.
    let plan = FaultPlan::parse("panic:build:taxonomy").expect("spec");
    let crash = std::panic::catch_unwind(|| generate_nref_checked(params, &Faults::to(&plan)));
    let payload = crash.expect_err("the build panic must fire");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("build:taxonomy"),
        "panic must name its site: {message}"
    );
    // The injected ENOSPC: a typed error, not a panic.
    let plan = FaultPlan::parse("enospc:datagen").expect("spec");
    let err = generate_nref_checked(params, &Faults::to(&plan)).expect_err("enospc fires");
    assert!(err.to_string().contains("datagen"), "{err}");
    // The resume: rerunning with faults disarmed matches a build that
    // never saw a fault, row for row.
    let resumed = generate_nref_checked(params, &Faults::disabled()).expect("clean rerun");
    let clean = generate_nref(params);
    for name in ["protein", "source", "taxonomy"] {
        let (a, b) = (resumed.table(name).unwrap(), clean.table(name).unwrap());
        assert_eq!(a.n_rows(), b.n_rows(), "{name}");
        assert_eq!(a.row(7), b.row(7), "{name}");
    }
}

/// The repro harness surfaces a datagen fault as a typed
/// [`ReproError::Datagen`] naming the database and the fault site, and
/// a `--resume` rerun with the fault disarmed finishes with outputs
/// byte-identical to a never-interrupted run.
#[test]
fn repro_datagen_crash_resumes_byte_identical() {
    let base = std::env::temp_dir().join(format!("tab_fault_datagen_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    let clean_dir = base.join("clean");
    run_all(&tiny(&clean_dir, 1)).expect("clean baseline run");
    let want = snapshot(&clean_dir);

    // SkTH is the first TPC-H database generated, well after the NREF
    // section's artifacts are on disk — a mid-run crash.
    let dir = base.join("crash");
    let mut cfg = tiny(&dir, 1);
    cfg.faults = Some(FaultPlan::parse("panic:build:lineitem").expect("spec"));
    match run_all(&cfg) {
        Err(ReproError::Datagen { label, message }) => {
            assert_eq!(label, "SkTH");
            assert!(message.contains("build:lineitem"), "{message}");
        }
        other => panic!("expected a typed datagen error, got {other:?}"),
    }
    assert!(
        dir.join("repro.checkpoint.jsonl").exists(),
        "the journal must survive a datagen crash"
    );

    cfg.faults = None;
    cfg.resume = true;
    run_all(&cfg).expect("resume completes the run");
    assert_same_outputs(&dir, &want, "datagen-crash-resume");

    std::fs::remove_dir_all(&base).ok();
}

/// The WAL torn-tail contract end to end: a `panic:wal:append` crash
/// leaves a half-written final frame; the engine refuses further writes
/// on the poisoned log; recovery truncates exactly the torn frame,
/// replays every whole one, and restores append capability.
#[test]
fn panicked_wal_append_truncates_to_a_recoverable_tail() {
    let db = generate_nref(NrefParams {
        proteins: 300,
        seed: 2005,
    });
    let state = || {
        EngineState::new(db.clone())
            .with_config("p", tab_bench::eval::build_p(&db, "NREF"))
            .with_config("1c", tab_bench::eval::build_1c(&db, "NREF"))
    };
    let insert = |key: i64| {
        let sql =
            format!("INSERT INTO source VALUES ({key}, 1, 562, 'W{key}', 'wal row', 'testdb')");
        match parse_statement(&sql).expect("parse") {
            Statement::Insert(i) => i,
            other => panic!("expected insert: {other:?}"),
        }
    };
    let wal = std::env::temp_dir().join(format!("tab_fault_wal_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&wal);

    // Append 0 succeeds; append 1 panics mid-frame (fsynced half line).
    let plan = Arc::new(FaultPlan::parse("panic:wal:append:1").expect("spec"));
    let (engine, _) = SharedEngine::with_wal(state(), &wal, Some(plan)).expect("fresh wal");
    let engine = Arc::new(engine);
    engine.insert(&insert(99_970), "p").expect("first insert");
    let crashed = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            let _ = engine.insert(&insert(99_971), "p");
        })
        .join()
    };
    assert!(crashed.is_err(), "the armed append must panic");
    // The poisoned log refuses further writes: appending after a torn
    // tail would corrupt the only copy of the acked history.
    let refused = engine.insert(&insert(99_972), "p").expect_err("refused");
    assert!(refused.to_string().contains("poisoned"), "{refused}");
    assert_eq!(engine.generation(), 1, "nothing after the crash applied");

    // Recovery: the torn frame is truncated, the whole one replayed.
    let (recovered, report) = SharedEngine::with_wal(state(), &wal, None).expect("recovery");
    assert_eq!(report.replayed, 1);
    assert!(report.torn_tail, "the half-written frame must be reported");
    assert_eq!(recovered.generation(), 1);
    // And the log accepts appends again.
    let r = recovered
        .insert(&insert(99_973), "p")
        .expect("post-recovery");
    assert_eq!(recovered.generation(), 2);
    assert!(r.units > 0.0);
    let _ = std::fs::remove_file(&wal);
}
