//! Randomized tests spanning the workspace: the optimizer+executor
//! pipeline must agree with the brute-force interpreter on arbitrary
//! queries, under arbitrary index configurations.
//!
//! Cases are generated from a fixed-seed PRNG (the offline stand-in for
//! the original proptest strategies); every failure message includes the
//! case number so a regression can be replayed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tab_bench::engine::{bind, naive, CostMeter, Resolver};
use tab_bench::sqlq::{parse, CmpOp, ColRef, Predicate, Query, RangeOp, SelectItem, TableRef};
use tab_bench::storage::{
    BuiltConfiguration, ColType, ColumnDef, Configuration, Database, IndexSpec, Table, TableSchema,
    Value,
};

/// Small database over two tables with tiny value domains so joins and
/// frequency filters exercise real matches.
fn build_db(r_rows: &[(i64, i64, i64)], s_rows: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    let mut r = Table::new(TableSchema::new(
        "r",
        vec![
            ColumnDef::new("a", ColType::Int),
            ColumnDef::new("b", ColType::Int),
            ColumnDef::new("c", ColType::Int),
        ],
    ));
    for &(a, b, c) in r_rows {
        r.insert(vec![Value::Int(a), Value::Int(b), Value::Int(c)]);
    }
    let mut s = Table::new(TableSchema::new(
        "s",
        vec![
            ColumnDef::new("a", ColType::Int),
            ColumnDef::new("d", ColType::Int),
        ],
    ));
    for &(a, d) in s_rows {
        s.insert(vec![Value::Int(a), Value::Int(d)]);
    }
    db.add_table(r);
    db.add_table(s);
    db.collect_stats();
    db
}

#[derive(Debug, Clone)]
struct Shape {
    join: u8, // 0 = none (cartesian), 1 = r.a=s.a, 2 = r.b=s.d
    filter_r: Option<i64>,
    filter_s: Option<i64>,
    range_r: Option<(u8, i64)>, // r.c {<,<=,>,>=} const
    freq: Option<i64>,          // r.a IN (... HAVING COUNT(*) < k)
    group: bool,                // group by r.c
    agg: u8,                    // 0 = COUNT(*), 1 = COUNT(DISTINCT r.b), 2 = COUNT(DISTINCT s.d)
    self_join: bool,            // add second alias of r joined on r.a
    order_desc: Option<bool>,   // ORDER BY r.c [DESC] (only when grouped)
    limit: Option<u8>,
}

fn opt<T>(rng: &mut StdRng, f: impl FnOnce(&mut StdRng) -> T) -> Option<T> {
    if rng.random_bool(0.5) {
        Some(f(rng))
    } else {
        None
    }
}

fn random_shape(rng: &mut StdRng) -> Shape {
    Shape {
        join: rng.random_range(0u32..3) as u8,
        filter_r: opt(rng, |r| r.random_range(0i64..6)),
        filter_s: opt(rng, |r| r.random_range(0i64..6)),
        range_r: opt(rng, |r| {
            (r.random_range(0u32..4) as u8, r.random_range(0i64..6))
        }),
        freq: opt(rng, |r| r.random_range(1i64..5)),
        group: rng.random_bool(0.5),
        agg: rng.random_range(0u32..3) as u8,
        self_join: rng.random_bool(0.5),
        order_desc: opt(rng, |r| r.random_bool(0.5)),
        limit: opt(rng, |r| r.random_range(0u32..8) as u8),
    }
}

fn random_r_rows(rng: &mut StdRng, max: usize) -> Vec<(i64, i64, i64)> {
    let n = rng.random_range(0usize..max);
    (0..n)
        .map(|_| {
            (
                rng.random_range(0i64..6),
                rng.random_range(0i64..6),
                rng.random_range(0i64..6),
            )
        })
        .collect()
}

fn random_s_rows(rng: &mut StdRng, max: usize) -> Vec<(i64, i64)> {
    let n = rng.random_range(0usize..max);
    (0..n)
        .map(|_| (rng.random_range(0i64..6), rng.random_range(0i64..6)))
        .collect()
}

fn build_query(shape: &Shape) -> Query {
    let mut from = vec![TableRef::new("r", "r1"), TableRef::new("s", "s")];
    let mut predicates = Vec::new();
    match shape.join {
        1 => predicates.push(Predicate::JoinEq(
            ColRef::new("r1", "a"),
            ColRef::new("s", "a"),
        )),
        2 => predicates.push(Predicate::JoinEq(
            ColRef::new("r1", "b"),
            ColRef::new("s", "d"),
        )),
        _ => {}
    }
    if shape.self_join {
        from.push(TableRef::new("r", "r2"));
        predicates.push(Predicate::JoinEq(
            ColRef::new("r1", "a"),
            ColRef::new("r2", "a"),
        ));
    }
    if let Some(v) = shape.filter_r {
        predicates.push(Predicate::ConstEq(ColRef::new("r1", "b"), Value::Int(v)));
    }
    if let Some((op, v)) = shape.range_r {
        let op = match op {
            0 => RangeOp::Lt,
            1 => RangeOp::Le,
            2 => RangeOp::Gt,
            _ => RangeOp::Ge,
        };
        predicates.push(Predicate::ConstRange(
            ColRef::new("r1", "c"),
            op,
            Value::Int(v),
        ));
    }
    if let Some(v) = shape.filter_s {
        predicates.push(Predicate::ConstEq(ColRef::new("s", "d"), Value::Int(v)));
    }
    if let Some(k) = shape.freq {
        predicates.push(Predicate::InFrequency {
            col: ColRef::new("r1", "a"),
            sub_table: "r".into(),
            sub_column: "a".into(),
            op: CmpOp::Lt,
            k,
        });
    }
    let agg = match shape.agg {
        0 => SelectItem::CountStar,
        1 => SelectItem::CountDistinct(ColRef::new("r1", "b")),
        _ => SelectItem::CountDistinct(ColRef::new("s", "d")),
    };
    let (select, group_by) = if shape.group {
        (
            vec![SelectItem::Column(ColRef::new("r1", "c")), agg],
            vec![ColRef::new("r1", "c")],
        )
    } else {
        (vec![agg], vec![])
    };
    // Ordering requires a selected plain column; a limit without an
    // explicit order still produces a deterministic result only when the
    // full ordering is applied, so tie it to `group` as well.
    let order_by = match (shape.group, shape.order_desc) {
        (true, Some(desc)) => vec![(ColRef::new("r1", "c"), desc)],
        _ => vec![],
    };
    let limit = if order_by.is_empty() {
        None
    } else {
        shape.limit.map(u64::from)
    };
    Query {
        select,
        from,
        predicates,
        group_by,
        order_by,
        limit,
    }
}

fn config_from_mask(mask: u8) -> Configuration {
    let mut cfg = Configuration::named("prop");
    let all = [
        IndexSpec::new("r", vec![0]),
        IndexSpec::new("r", vec![1, 2]),
        IndexSpec::new("s", vec![0]),
        IndexSpec::new("s", vec![1]),
        IndexSpec::new("r", vec![2, 0]),
    ];
    for (i, spec) in all.into_iter().enumerate() {
        if mask & (1 << i) != 0 {
            cfg.indexes.push(spec);
        }
    }
    cfg
}

/// The planned-and-executed result must equal the brute-force result
/// for every query shape and every index configuration.
#[test]
fn executor_matches_naive() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    for case in 0..64 {
        let r_rows = random_r_rows(&mut rng, 25);
        let s_rows = random_s_rows(&mut rng, 25);
        let shape = random_shape(&mut rng);
        let mask = rng.random_range(0u32..32) as u8;
        let db = build_db(&r_rows, &s_rows);
        let built = BuiltConfiguration::build(config_from_mask(mask), &db);
        let q = build_query(&shape);
        let bound = bind(&q, &db).expect("generated queries bind");

        let expect = naive::evaluate(&bound, &db);
        let session = tab_bench::engine::Session::new(&db, &built);
        let got = session.run(&q, None).unwrap().rows.unwrap();
        if q.order_by.is_empty() {
            let mut expect = expect;
            let mut got = got;
            expect.sort();
            got.sort();
            assert_eq!(expect, got, "case {case}: shape {shape:?} mask {mask}");
        } else {
            // Ordered (and possibly limited) results compare as lists.
            assert_eq!(expect, got, "case {case}: shape {shape:?} mask {mask}");
        }
    }
}

/// Printing a generated query and reparsing it yields the same AST.
#[test]
fn sql_print_parse_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    for case in 0..128 {
        let shape = random_shape(&mut rng);
        let q = build_query(&shape);
        let text = q.to_string();
        let q2 = parse(&text).expect("rendered SQL parses");
        assert_eq!(q, q2, "case {case}: {text}");
    }
}

/// Execution cost never increases when the executor runs the exact
/// same plan; and a budget equal to the unbounded cost never trips.
#[test]
fn budget_at_actual_cost_completes() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    for case in 0..64 {
        let mut r_rows = random_r_rows(&mut rng, 20);
        if r_rows.is_empty() {
            r_rows.push((0, 0, 0));
        }
        let mut s_rows = random_s_rows(&mut rng, 20);
        if s_rows.is_empty() {
            s_rows.push((0, 0));
        }
        let shape = random_shape(&mut rng);
        let db = build_db(&r_rows, &s_rows);
        let built = BuiltConfiguration::build(Configuration::named("p"), &db);
        let q = build_query(&shape);
        let session = tab_bench::engine::Session::new(&db, &built);
        let r1 = session.run(&q, None).unwrap();
        let units = r1.outcome.units().unwrap();
        let r2 = session.run(&q, Some(units + 1e-9)).unwrap();
        assert!(!r2.outcome.is_timeout(), "case {case}: shape {shape:?}");
        assert!(
            (r2.outcome.units().unwrap() - units).abs() < 1e-9,
            "case {case}: shape {shape:?}"
        );
    }
}

/// The executor's metered totals are deterministic.
#[test]
fn execution_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    for case in 0..64 {
        let r_rows = random_r_rows(&mut rng, 20);
        let s_rows = random_s_rows(&mut rng, 20);
        let shape = random_shape(&mut rng);
        let db = build_db(&r_rows, &s_rows);
        let built = BuiltConfiguration::build(Configuration::named("p"), &db);
        let q = build_query(&shape);
        let bound = bind(&q, &db).unwrap();
        let stats = tab_bench::engine::RealStats::new(&db, &built);
        let plan = tab_bench::engine::plan(&bound, &stats);
        let resolver = Resolver::new(&db, &built);
        let mut m1 = CostMeter::unbounded();
        let mut m2 = CostMeter::unbounded();
        tab_bench::engine::execute(&plan, &resolver, &mut m1).unwrap();
        tab_bench::engine::execute(&plan, &resolver, &mut m2).unwrap();
        assert_eq!(m1.units(), m2.units(), "case {case}: shape {shape:?}");
    }
}
