//! The parallel harness's central guarantee: a reproduction run's
//! outputs are byte-identical at any thread count (timings.json is the
//! documented exception — wall-clock varies run to run).

use std::collections::BTreeMap;
use std::path::Path;

use tab_bench::eval::SuiteParams;
use tab_bench_harness::repro::{run_all, ReproConfig};

fn tiny(out: &Path, threads: usize) -> ReproConfig {
    ReproConfig {
        params: SuiteParams {
            nref_proteins: 400,
            tpch_scale: 0.002,
            workload_size: 8,
            timeout_units: 500.0,
            seed: 7,
            ..SuiteParams::small()
        }
        .with_threads(threads),
        out_dir: out.to_path_buf(),
        trace: None,
        faults: None,
        resume: false,
    }
}

/// Like [`tiny`], but with intra-query morsel parallelism dialed up:
/// 4 query threads and a 64-row morsel size. Every artifact must still
/// byte-compare against the sequential baseline.
fn tiny_morsel(out: &Path, threads: usize) -> ReproConfig {
    let mut cfg = tiny(out, threads);
    cfg.params = cfg.params.with_query_threads(4).with_morsel_rows(64);
    cfg
}

/// Read every output file, excluding `timings.json` and the `BENCH_*`
/// phase records — both hold wall-clock, which varies run to run.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read output dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "timings.json" || name.starts_with("BENCH_") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).expect("read output file"));
    }
    out
}

#[test]
fn repro_outputs_identical_at_one_and_four_threads() {
    let base = std::env::temp_dir().join(format!("tab_determinism_{}", std::process::id()));
    let dirs = [
        base.join("t1"),
        base.join("t1b"),
        base.join("t4"),
        base.join("t4q4"),
    ];
    let summaries = [
        run_all(&tiny(&dirs[0], 1)).expect("clean run at 1 thread"),
        run_all(&tiny(&dirs[1], 1)).expect("clean repeat run"),
        run_all(&tiny(&dirs[2], 4)).expect("clean run at 4 threads"),
        run_all(&tiny_morsel(&dirs[3], 4)).expect("clean run with 4 query threads"),
    ];

    // Claims agree across repeats and thread counts, verdicts included.
    for s in &summaries[1..] {
        assert_eq!(s.claims.len(), summaries[0].claims.len());
        for (a, b) in s.claims.iter().zip(&summaries[0].claims) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.holds, b.holds, "claim {} verdict differs", a.id);
            assert_eq!(a.evidence, b.evidence, "claim {} evidence differs", a.id);
        }
    }

    // Every CSV and figure file is byte-identical.
    let want = snapshot(&dirs[0]);
    assert!(
        want.keys().any(|k| k.ends_with(".csv")),
        "expected CSV outputs, got {:?}",
        want.keys().collect::<Vec<_>>()
    );
    for dir in &dirs[1..] {
        let got = snapshot(dir);
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            want.keys().collect::<Vec<_>>()
        );
        for (name, bytes) in &want {
            assert_eq!(&got[name], bytes, "{name} differs between runs");
        }
    }

    // timings.json exists and records the thread count.
    let t = std::fs::read_to_string(dirs[2].join("timings.json")).expect("timings.json");
    assert!(t.contains("\"threads\": 4"), "unexpected timings: {t}");
    assert!(t.contains("\"family\": \"NREF2J\""));

    // The per-phase performance record exists, carries the documented
    // schema, and its grid cost units are identical at any thread count
    // (only wall-clock may differ).
    let units = |dir: &Path| -> String {
        let b = std::fs::read_to_string(dir.join("BENCH_repro_small.json"))
            .expect("BENCH_repro_small.json");
        assert!(b.contains("\"schema\": \"tab-bench-phases-v1\""), "{b}");
        assert!(b.contains("\"name\": \"measurement-grid\""), "{b}");
        b.lines()
            .filter(|l| l.contains("\"cost_units\""))
            .map(|l| {
                l.split("\"cost_units\": ")
                    .nth(1)
                    .expect("units")
                    .to_string()
            })
            .collect()
    };
    let want_units = units(&dirs[0]);
    for dir in &dirs[1..] {
        assert_eq!(units(dir), want_units, "phase cost units differ");
    }

    // BENCH_convergence.json is the one BENCH_* record that carries no
    // wall-clock at all: unlike its siblings it must be *byte*-identical
    // across repeats and thread counts (it is excluded from the generic
    // snapshot above only by its BENCH_ name).
    let conv = std::fs::read(dirs[0].join("BENCH_convergence.json")).expect("convergence record");
    assert!(
        String::from_utf8_lossy(&conv).contains("\"schema\": \"tab-convergence-v1\""),
        "unexpected convergence schema"
    );
    for dir in &dirs[1..] {
        let other = std::fs::read(dir.join("BENCH_convergence.json")).expect("convergence record");
        assert_eq!(conv, other, "BENCH_convergence.json differs between runs");
    }

    // The executor bench record exists and is schema-tagged. It carries
    // wall-clock, so only its presence and deterministic header fields
    // are checked here (the snapshot above skips it by BENCH_ prefix).
    let exec = std::fs::read_to_string(dirs[3].join("BENCH_exec.json")).expect("BENCH_exec.json");
    assert!(exec.contains("\"schema\": \"tab-exec-bench-v1\""), "{exec}");
    assert!(exec.contains("\"query_threads\": 4"), "{exec}");
    assert!(exec.contains("\"morsel_rows\": 64"), "{exec}");

    // The advisor's what-if instrumentation record exists, and every
    // field except wall-clock (and the thread count itself) is
    // identical at any thread count — the cache-hit and planner-call
    // counters included.
    let advisor = |dir: &Path| -> String {
        let b =
            std::fs::read_to_string(dir.join("BENCH_advisor.json")).expect("BENCH_advisor.json");
        assert!(b.contains("\"schema\": \"tab-advisor-bench-v1\""), "{b}");
        assert!(b.contains("\"system\": \"A\""), "{b}");
        assert!(b.contains("\"system\": \"C\""), "{b}");
        b.lines()
            .filter(|l| l.contains("\"system\""))
            .map(|l| l.split(", \"wall_seconds\"").next().expect("record line"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let want_advisor = advisor(&dirs[0]);
    assert!(want_advisor.contains("\"cache_hits\": "), "{want_advisor}");
    for dir in &dirs[1..] {
        assert_eq!(advisor(dir), want_advisor, "advisor counters differ");
    }

    std::fs::remove_dir_all(&base).ok();
}
