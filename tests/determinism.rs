//! The parallel harness's central guarantee: a reproduction run's
//! outputs are byte-identical at any thread count (timings.json is the
//! documented exception — wall-clock varies run to run).

use std::collections::BTreeMap;
use std::path::Path;

use tab_bench::engine::ChargePolicy;
use tab_bench::eval::SuiteParams;
use tab_bench_harness::repro::{run_all, ReproConfig};

fn tiny(out: &Path, threads: usize) -> ReproConfig {
    ReproConfig {
        params: SuiteParams {
            nref_proteins: 400,
            tpch_scale: 0.002,
            workload_size: 8,
            timeout_units: 500.0,
            seed: 7,
            ..SuiteParams::small()
        }
        .with_threads(threads),
        out_dir: out.to_path_buf(),
        trace: None,
        faults: None,
        resume: false,
    }
}

/// Like [`tiny`], but with intra-query morsel parallelism dialed up:
/// 4 query threads and a 64-row morsel size. Every artifact must still
/// byte-compare against the sequential baseline.
fn tiny_morsel(out: &Path, threads: usize) -> ReproConfig {
    let mut cfg = tiny(out, threads);
    cfg.params = cfg.params.with_query_threads(4).with_morsel_rows(64);
    cfg
}

/// Read every output file, excluding `timings.json` and the `BENCH_*`
/// phase records — both hold wall-clock, which varies run to run.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read output dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "timings.json" || name.starts_with("BENCH_") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).expect("read output file"));
    }
    out
}

#[test]
fn repro_outputs_identical_at_one_and_four_threads() {
    let base = std::env::temp_dir().join(format!("tab_determinism_{}", std::process::id()));
    let dirs = [
        base.join("t1"),
        base.join("t1b"),
        base.join("t4"),
        base.join("t4q4"),
    ];
    let summaries = [
        run_all(&tiny(&dirs[0], 1)).expect("clean run at 1 thread"),
        run_all(&tiny(&dirs[1], 1)).expect("clean repeat run"),
        run_all(&tiny(&dirs[2], 4)).expect("clean run at 4 threads"),
        run_all(&tiny_morsel(&dirs[3], 4)).expect("clean run with 4 query threads"),
    ];

    // Claims agree across repeats and thread counts, verdicts included.
    for s in &summaries[1..] {
        assert_eq!(s.claims.len(), summaries[0].claims.len());
        for (a, b) in s.claims.iter().zip(&summaries[0].claims) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.holds, b.holds, "claim {} verdict differs", a.id);
            assert_eq!(a.evidence, b.evidence, "claim {} evidence differs", a.id);
        }
    }

    // Every CSV and figure file is byte-identical.
    let want = snapshot(&dirs[0]);
    assert!(
        want.keys().any(|k| k.ends_with(".csv")),
        "expected CSV outputs, got {:?}",
        want.keys().collect::<Vec<_>>()
    );
    for dir in &dirs[1..] {
        let got = snapshot(dir);
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            want.keys().collect::<Vec<_>>()
        );
        for (name, bytes) in &want {
            assert_eq!(&got[name], bytes, "{name} differs between runs");
        }
    }

    // Pool-less runs report compat-mode io: BENCH_io.json exists, is
    // schema-tagged, and says the pool was off.
    let io = std::fs::read_to_string(dirs[0].join("BENCH_io.json")).expect("BENCH_io.json");
    assert!(io.contains("\"schema\": \"tab-io-bench-v1\""), "{io}");
    assert!(io.contains("\"mode\": \"compat\""), "{io}");

    // timings.json exists and records the thread count.
    let t = std::fs::read_to_string(dirs[2].join("timings.json")).expect("timings.json");
    assert!(t.contains("\"threads\": 4"), "unexpected timings: {t}");
    assert!(t.contains("\"family\": \"NREF2J\""));

    // The per-phase performance record exists, carries the documented
    // schema, and its grid cost units are identical at any thread count
    // (only wall-clock may differ).
    let units = |dir: &Path| -> String {
        let b = std::fs::read_to_string(dir.join("BENCH_repro_small.json"))
            .expect("BENCH_repro_small.json");
        assert!(b.contains("\"schema\": \"tab-bench-phases-v1\""), "{b}");
        assert!(b.contains("\"name\": \"measurement-grid\""), "{b}");
        b.lines()
            .filter(|l| l.contains("\"cost_units\""))
            .map(|l| {
                l.split("\"cost_units\": ")
                    .nth(1)
                    .expect("units")
                    .to_string()
            })
            .collect()
    };
    let want_units = units(&dirs[0]);
    for dir in &dirs[1..] {
        assert_eq!(units(dir), want_units, "phase cost units differ");
    }

    // BENCH_convergence.json is the one BENCH_* record that carries no
    // wall-clock at all: unlike its siblings it must be *byte*-identical
    // across repeats and thread counts (it is excluded from the generic
    // snapshot above only by its BENCH_ name).
    let conv = std::fs::read(dirs[0].join("BENCH_convergence.json")).expect("convergence record");
    assert!(
        String::from_utf8_lossy(&conv).contains("\"schema\": \"tab-convergence-v1\""),
        "unexpected convergence schema"
    );
    for dir in &dirs[1..] {
        let other = std::fs::read(dir.join("BENCH_convergence.json")).expect("convergence record");
        assert_eq!(conv, other, "BENCH_convergence.json differs between runs");
    }

    // The executor bench record exists and is schema-tagged. It carries
    // wall-clock, so only its presence and deterministic header fields
    // are checked here (the snapshot above skips it by BENCH_ prefix).
    let exec = std::fs::read_to_string(dirs[3].join("BENCH_exec.json")).expect("BENCH_exec.json");
    assert!(exec.contains("\"schema\": \"tab-exec-bench-v1\""), "{exec}");
    assert!(exec.contains("\"query_threads\": 4"), "{exec}");
    assert!(exec.contains("\"morsel_rows\": 64"), "{exec}");

    // The advisor's what-if instrumentation record exists, and every
    // field except wall-clock (and the thread count itself) is
    // identical at any thread count — the cache-hit and planner-call
    // counters included.
    let advisor = |dir: &Path| -> String {
        let b =
            std::fs::read_to_string(dir.join("BENCH_advisor.json")).expect("BENCH_advisor.json");
        assert!(b.contains("\"schema\": \"tab-advisor-bench-v1\""), "{b}");
        assert!(b.contains("\"system\": \"A\""), "{b}");
        assert!(b.contains("\"system\": \"C\""), "{b}");
        b.lines()
            .filter(|l| l.contains("\"system\""))
            .map(|l| l.split(", \"wall_seconds\"").next().expect("record line"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let want_advisor = advisor(&dirs[0]);
    assert!(want_advisor.contains("\"cache_hits\": "), "{want_advisor}");
    for dir in &dirs[1..] {
        assert_eq!(advisor(dir), want_advisor, "advisor counters differ");
    }

    std::fs::remove_dir_all(&base).ok();
}

/// Like [`tiny`], but with every grid query routed through a
/// `pages`-frame buffer pool in Metered charge mode. Metered keeps the
/// meter's totals byte-identical to the pool-less legacy model, so the
/// whole artifact set must byte-compare against a pool-less baseline —
/// at any capacity and any thread count — while the pool still runs
/// frames, clock eviction, and spill underneath.
fn tiny_pooled(out: &Path, threads: usize, pages: usize) -> ReproConfig {
    let mut cfg = tiny(out, threads);
    cfg.params = cfg
        .params
        .with_buffer_pages(pages)
        .with_charge(ChargePolicy::Metered);
    cfg
}

#[test]
fn pooled_repro_outputs_identical_across_capacities_and_threads() {
    let base = std::env::temp_dir().join(format!("tab_pool_determinism_{}", std::process::id()));
    let plain = base.join("plain");
    let p64t1 = base.join("p64t1");
    let p64t8 = base.join("p64t8");
    let p4096t4 = base.join("p4096t4");
    run_all(&tiny(&plain, 1)).expect("pool-less baseline");
    run_all(&tiny_pooled(&p64t1, 1, 64)).expect("64-frame pool at 1 thread");
    run_all(&tiny_pooled(&p64t8, 8, 64)).expect("64-frame pool at 8 threads");
    run_all(&tiny_pooled(&p4096t4, 4, 4096)).expect("4096-frame pool at 4 threads");

    // Every CSV, figure, and claim is byte-identical to the pool-less
    // baseline: eviction is a pure function of the logical access
    // stream and Metered charging never moves a unit.
    let want = snapshot(&plain);
    for dir in [&p64t1, &p64t8, &p4096t4] {
        let got = snapshot(dir);
        assert_eq!(
            got.keys().collect::<Vec<_>>(),
            want.keys().collect::<Vec<_>>()
        );
        for (name, bytes) in &want {
            assert_eq!(
                &got[name],
                bytes,
                "{name} differs from the pool-less baseline in {}",
                dir.display()
            );
        }
    }

    // BENCH_io.json is wall-clock-free, so at a fixed capacity it must
    // *byte*-compare across thread counts — the whole point of keeping
    // eviction off the thread schedule.
    let io64 = std::fs::read(p64t1.join("BENCH_io.json")).expect("BENCH_io.json");
    let io64_t8 = std::fs::read(p64t8.join("BENCH_io.json")).expect("BENCH_io.json");
    assert_eq!(io64, io64_t8, "BENCH_io.json differs across thread counts");

    // The 64-frame capacity sits below the tiny database's working set:
    // the run must report real evictions and an imperfect hit rate.
    let io64 = String::from_utf8(io64).expect("utf8");
    assert!(io64.contains("\"schema\": \"tab-io-bench-v1\""), "{io64}");
    assert!(io64.contains("\"mode\": \"pool\""), "{io64}");
    assert!(io64.contains("\"buffer_pages\": 64"), "{io64}");
    assert!(io64.contains("\"charge\": \"metered\""), "{io64}");
    let field_total = |doc: &str, key: &str| -> u64 {
        doc.lines()
            .filter_map(|l| {
                let (_, rest) = l.split_once(&format!("\"{key}\": "))?;
                rest.split([',', '}']).next()?.trim().parse::<u64>().ok()
            })
            .sum()
    };
    assert!(
        field_total(&io64, "evictions") > 0,
        "64-frame pool reports no evictions: {io64}"
    );
    let hits = field_total(&io64, "hits");
    let misses = field_total(&io64, "misses_seq") + field_total(&io64, "misses_random");
    assert!(misses > 0, "64-frame pool reports no misses: {io64}");
    assert!(
        (hits as f64) / ((hits + misses) as f64) < 1.0,
        "64-frame pool reports a perfect hit rate: {io64}"
    );

    // A capacity larger than the working set still byte-compares on the
    // grid artifacts (checked above) but shows different traffic.
    let io4096 = std::fs::read_to_string(p4096t4.join("BENCH_io.json")).expect("BENCH_io.json");
    assert!(io4096.contains("\"buffer_pages\": 4096"), "{io4096}");
    assert_ne!(io64, io4096, "traffic should differ across capacities");

    std::fs::remove_dir_all(&base).ok();
}
