//! Serving-path integration tests: the wire must reproduce direct
//! [`Session`] results exactly, survive bad requests, publish writes
//! atomically, and shut down gracefully (DESIGN.md §14).

use std::sync::Arc;
use std::time::Duration;

use tab_bench::datagen::{generate_nref, NrefParams};
use tab_bench::engine::{EngineState, Outcome, Session, SharedEngine};
use tab_bench::eval::{build_1c, build_p};
use tab_bench::families::Family;
use tab_bench::server::{Client, RetryClient, ServeOptions, Server};
use tab_bench::storage::{Database, FaultPlan};
use tab_bench_harness::serve_bench::{
    run_serve_bench, LoadMode, RequestOutcome, ServeBenchOptions,
};

fn nref(proteins: usize) -> Database {
    generate_nref(NrefParams {
        proteins,
        seed: 2005,
    })
}

fn state_of(db: &Database) -> EngineState {
    EngineState::new(db.clone())
        .with_config("p", build_p(db, "NREF"))
        .with_config("1c", build_1c(db, "NREF"))
}

fn start_server(db: &Database) -> (Arc<SharedEngine>, Server) {
    start_server_with(db, ServeOptions::default())
}

fn start_server_with(db: &Database, opts: ServeOptions) -> (Arc<SharedEngine>, Server) {
    let engine = Arc::new(SharedEngine::new(state_of(db)));
    let server = Server::start(Arc::clone(&engine), opts).expect("server boots");
    (engine, server)
}

fn source_insert(key: i64) -> String {
    format!("INSERT INTO source VALUES ({key}, 1, 562, 'T{key}', 'test protein', 'testdb')")
}

/// M clients x K queries over the wire give exactly the verdicts and
/// (bit-identical) cost units of direct sessions over the same
/// generation.
#[test]
fn wire_results_equal_direct_session_results() {
    let db = nref(400);
    let p = build_p(&db, "NREF");
    let queries: Vec<_> = Family::Nref2J.enumerate(&db).into_iter().take(6).collect();
    let (_engine, mut server) = start_server(&db);
    let addr = server.addr();
    let wire: Vec<(String, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|c| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    // Client c takes queries c, c+3, ... — all clients
                    // together cover the list, some queries repeatedly.
                    for q in queries.iter().skip(c).chain(queries.iter()) {
                        let r = client.query("p", &q.to_string()).expect("wire query");
                        assert!(r.is_ok(), "error envelope: {:?}", r.error());
                        out.push((
                            r.str_field("verdict").expect("verdict"),
                            r.num_field("units").expect("units"),
                        ));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    server.shutdown();
    // Re-derive every expectation with a direct session: queries are
    // keyed by text, so wire order does not matter.
    let session = Session::new(&db, &p);
    let mut expected = std::collections::BTreeMap::new();
    for q in &queries {
        let r = session.run(q, None).expect("direct run");
        let Outcome::Done { units, .. } = r.outcome else {
            panic!("untimed query cannot time out")
        };
        expected.insert(q.to_string(), units);
    }
    assert_eq!(wire.len(), 6 * queries.len() - 3);
    for (verdict, units) in &wire {
        assert_eq!(verdict, "done");
        assert!(
            expected.values().any(|u| u.to_bits() == units.to_bits()),
            "wire units {units} not produced by any direct run"
        );
    }
}

/// A malformed request gets an error envelope and the connection keeps
/// answering; a panic-free server is part of the wire contract.
#[test]
fn error_envelopes_do_not_kill_the_connection() {
    let db = nref(300);
    let (_engine, mut server) = start_server(&db);
    let mut client = Client::connect(server.addr()).expect("connect");
    for bad in [
        "FROBNICATE",
        "QUERY p",
        "QUERY nosuchconfig SELECT COUNT(*) FROM protein",
        "QUERY p SELECT COUNT(*) FROM nosuchtable",
        "QUERY p INSERT INTO protein VALUES (1)",
        "ADVISE NREF2J Z",
    ] {
        let r = client.request(bad).expect("a response line");
        assert!(!r.is_ok(), "`{bad}` should fail");
        assert!(r.error().is_some(), "`{bad}` should carry an error");
    }
    // The same connection still works after six failures.
    let r = client.ping().expect("ping");
    assert!(r.is_ok());
    server.shutdown();
}

/// An INSERT through the wire publishes a new generation; queries on
/// other connections see either the old or the new generation in
/// full — and units through `p` and `1c` both reflect the insert once
/// visible.
#[test]
fn wire_insert_publishes_a_generation() {
    let db = nref(300);
    let (engine, mut server) = start_server(&db);
    let mut a = Client::connect(server.addr()).expect("connect a");
    let mut b = Client::connect(server.addr()).expect("connect b");
    let count_sql = "SELECT COUNT(*) FROM source";
    let before = b.query("p", count_sql).expect("count before");
    let n0 = {
        let snap = engine.snapshot();
        let s = snap.session("p").expect("p served");
        let q = tab_bench::sqlq::parse(count_sql).expect("parse");
        let rows = s.run(&q, None).expect("run").rows.expect("rows");
        rows[0][0].as_int().expect("int")
    };
    assert_eq!(before.int_field("generation"), Some(0));
    let ins = a
        .query(
            "p",
            "INSERT INTO source VALUES (99999, 1, 562, 'TEST1', 'test protein', 'testdb')",
        )
        .expect("wire insert");
    assert!(ins.is_ok(), "insert failed: {:?}", ins.error());
    assert_eq!(ins.str_field("verdict").as_deref(), Some("inserted"));
    assert_eq!(ins.int_field("generation"), Some(1));
    assert!(ins.num_field("units").expect("maintenance units") > 0.0);
    let after = b.query("p", count_sql).expect("count after");
    assert_eq!(after.int_field("generation"), Some(1));
    // The published generation is visible through every configuration.
    let after_1c = b.query("1c", count_sql).expect("count via 1c");
    assert_eq!(after_1c.int_field("generation"), Some(1));
    let snap = engine.snapshot();
    let q = tab_bench::sqlq::parse(count_sql).expect("parse");
    for config in ["p", "1c"] {
        let s = snap.session(config).expect("served");
        let rows = s.run(&q, None).expect("run").rows.expect("rows");
        assert_eq!(rows[0][0].as_int().expect("int"), n0 + 1, "via {config}");
    }
    server.shutdown();
}

/// SHUTDOWN over the wire stops the accept loop and `Server::wait`
/// returns; a fresh connect is then refused or dead.
#[test]
fn wire_shutdown_is_graceful() {
    let db = nref(300);
    let (_engine, mut server) = start_server(&db);
    let addr = server.addr();
    let client = Client::connect(addr).expect("connect");
    let r = client.shutdown().expect("shutdown ack");
    assert!(r.is_ok());
    assert_eq!(r.str_field("verb").as_deref(), Some("shutdown"));
    server.wait();
    assert!(server.is_stopping());
    // The listener is gone: a new connection cannot complete a request.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.request_line("PING").is_err(), "server still answering"),
    }
}

/// The serving benchmark's committed-baseline contract: per-request
/// claims are identical at any client count and in either loop shape,
/// and the report is deterministic apart from its wall-clock lines.
#[test]
fn serve_bench_claims_are_interleaving_free() {
    let db = nref(400);
    let base = ServeBenchOptions {
        clients: 1,
        requests: 10,
        workload: 5,
        mode: LoadMode::Closed,
        ..ServeBenchOptions::default()
    };
    let one = run_serve_bench(&db, "NREF", Family::Nref2J, &base).expect("1 client");
    let four = run_serve_bench(
        &db,
        "NREF",
        Family::Nref2J,
        &ServeBenchOptions {
            clients: 4,
            ..base.clone()
        },
    )
    .expect("4 clients");
    let open = run_serve_bench(
        &db,
        "NREF",
        Family::Nref2J,
        &ServeBenchOptions {
            clients: 4,
            mode: LoadMode::Open {
                interarrival: Duration::from_millis(1),
            },
            ..base.clone()
        },
    )
    .expect("open loop");
    assert_eq!(one.requests_csv(), four.requests_csv());
    assert_eq!(one.requests_csv(), open.requests_csv());
    assert_eq!(one.baseline_matches, 10);
    assert_eq!(four.baseline_matches, 10);
    assert_eq!(open.baseline_matches, 10);
    // Full BENCH_serve.json determinism at a fixed client count, minus
    // the dedicated wall-clock lines.
    let again = run_serve_bench(&db, "NREF", Family::Nref2J, &base).expect("repeat");
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("wall_seconds") && !l.contains("qps"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&one.json()), strip(&again.json()));
    // Sanity on the claims themselves.
    for RequestOutcome { verdict, units, .. } in &one.outcomes {
        assert!(*verdict == "done" || *verdict == "timeout");
        assert!(*units > 0.0);
    }
}

/// The lost-ack window: a `drop:conn` fault swallows the INSERT ack
/// after the server applied the row. The sequence-keyed retry resends
/// under the same key; the server answers from its dedup table, so the
/// row applies exactly once.
#[test]
fn retry_heals_a_dropped_ack_without_double_apply() {
    let db = nref(300);
    let faults = Arc::new(FaultPlan::parse("drop:conn:1").expect("fault spec"));
    let (engine, mut server) = start_server_with(
        &db,
        ServeOptions {
            faults: Some(faults),
            ..ServeOptions::default()
        },
    );
    let mut client = RetryClient::new(server.addr().to_string(), "t-drop");
    assert!(client.ping().expect("ping (response 0)").is_ok());
    // Response 1 — the insert ack — is dropped on the floor.
    let r = client.insert("p", &source_insert(99_990)).expect("insert");
    assert!(r.is_ok(), "retried insert failed: {:?}", r.error());
    assert_eq!(r.int_field("generation"), Some(1));
    assert_eq!(r.bool_field("deduped"), Some(true));
    assert!(client.retries() >= 1, "the drop must force a retry");
    assert!(client.reconnects() >= 1, "the drop closes the connection");
    // Applied once: one generation, one dedup hit, no phantom row.
    assert_eq!(engine.generation(), 1);
    assert_eq!(engine.deduped(), 1);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.int_field("wire_dropped"), Some(1));
    assert_eq!(stats.int_field("deduped"), Some(1));
    server.shutdown();
}

/// Replaying the same `<client>:<seq>` key twice applies once: the
/// second request gets the cached ack (`deduped:true`, same
/// generation), and a sequence older than the last acked one is a
/// permanent (non-retryable) error.
#[test]
fn same_sequence_twice_applies_once() {
    let db = nref(300);
    let (engine, mut server) = start_server(&db);
    let mut client = Client::connect(server.addr()).expect("connect");
    let line = format!("INSERT p dup:1 {}", source_insert(99_991));
    let first = client.request(&line).expect("first send");
    assert!(first.is_ok(), "{:?}", first.error());
    assert_eq!(first.int_field("generation"), Some(1));
    assert_eq!(first.bool_field("deduped"), Some(false));
    let second = client.request(&line).expect("resend");
    assert!(second.is_ok(), "{:?}", second.error());
    assert_eq!(second.int_field("generation"), Some(1));
    assert_eq!(second.bool_field("deduped"), Some(true));
    assert_eq!(engine.generation(), 1, "the resend must not re-apply");
    // Advance to seq 2, then replay seq 1: stale, permanent, no apply.
    let fresh = client
        .request(&format!("INSERT p dup:2 {}", source_insert(99_992)))
        .expect("seq 2");
    assert!(fresh.is_ok());
    let stale = client.request(&line).expect("stale send");
    assert!(!stale.is_ok(), "a stale sequence must be refused");
    assert!(!stale.is_retryable(), "stale is permanent, not retryable");
    assert_eq!(engine.generation(), 2);
    server.shutdown();
}

/// Overload shedding degrades expensive verbs first: with an admission
/// limit of 1, ADVISE and EXPLAIN are shed with typed retryable
/// `overloaded` envelopes while QUERY and PING still get through.
#[test]
fn shedding_rejects_expensive_verbs_with_retryable_envelopes() {
    let db = nref(300);
    let (_engine, mut server) = start_server_with(
        &db,
        ServeOptions {
            admission: 1,
            ..ServeOptions::default()
        },
    );
    let mut client = Client::connect(server.addr()).expect("connect");
    for line in [
        "ADVISE NREF2J B 5",
        "EXPLAIN p SELECT COUNT(*) FROM protein",
    ] {
        let r = client.request(line).expect("a response line");
        assert!(!r.is_ok(), "`{line}` should be shed");
        assert!(r.is_retryable(), "`{line}` shed must be retryable");
        assert_eq!(r.reason().as_deref(), Some("overloaded"));
    }
    let q = client
        .query("p", "SELECT COUNT(*) FROM protein")
        .expect("query");
    assert!(q.is_ok(), "QUERY sheds last: {:?}", q.error());
    assert!(client.ping().expect("ping").is_ok(), "PING is never shed");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.int_field("shed_advise"), Some(1));
    assert_eq!(stats.int_field("shed_explain"), Some(1));
    assert_eq!(stats.int_field("shed_query"), Some(0));
    server.shutdown();
}

/// Past the connection cap, a new connection is told `overloaded`
/// (retryable) and closed; it never hangs and never crashes the server.
#[test]
fn connection_cap_refuses_with_a_retryable_envelope() {
    let db = nref(300);
    let (_engine, mut server) = start_server_with(
        &db,
        ServeOptions {
            max_connections: 1,
            ..ServeOptions::default()
        },
    );
    let mut first = Client::connect(server.addr()).expect("first connect");
    assert!(first.ping().expect("ping").is_ok());
    let mut second = Client::connect(server.addr()).expect("tcp accept still works");
    let refusal = second.request("PING").expect("refusal envelope");
    assert!(!refusal.is_ok());
    assert!(refusal.is_retryable());
    assert_eq!(refusal.reason().as_deref(), Some("overloaded"));
    // The admitted connection is unaffected.
    assert!(first.ping().expect("ping again").is_ok());
    server.shutdown();
}

/// A torn (half-written) response line is detected by the envelope
/// parser and retried; reads are idempotent, so the retry converges.
#[test]
fn torn_wire_responses_are_detected_and_retried() {
    let db = nref(300);
    let faults = Arc::new(FaultPlan::parse("torn:wire:1").expect("fault spec"));
    let (_engine, mut server) = start_server_with(
        &db,
        ServeOptions {
            faults: Some(faults),
            ..ServeOptions::default()
        },
    );
    let mut client = RetryClient::new(server.addr().to_string(), "t-torn");
    assert!(client.ping().expect("ping (response 0)").is_ok());
    // Response 1 is torn mid-line; the client must notice and resend.
    let r = client
        .query("p", "SELECT COUNT(*) FROM protein")
        .expect("query survives the torn line");
    assert!(r.is_ok(), "{:?}", r.error());
    assert_eq!(r.str_field("verdict").as_deref(), Some("done"));
    assert!(client.retries() >= 1, "the torn line must force a retry");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.int_field("wire_torn"), Some(1));
    server.shutdown();
}

/// Served inserts written through a WAL survive the server: a fresh
/// engine recovering from the log reports the same generation and sees
/// every acknowledged row.
#[test]
fn wal_recovery_restores_served_inserts() {
    let db = nref(300);
    let wal = std::env::temp_dir().join(format!("tab_serving_wal_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&wal);
    let (engine, report) =
        SharedEngine::with_wal(state_of(&db), &wal, None).expect("fresh wal opens");
    assert_eq!(report.replayed, 0);
    let engine = Arc::new(engine);
    let mut server =
        Server::start(Arc::clone(&engine), ServeOptions::default()).expect("server boots");
    let mut client = RetryClient::new(server.addr().to_string(), "walclient");
    for i in 0..3 {
        let r = client
            .insert("p", &source_insert(99_980 + i))
            .expect("insert");
        assert!(r.is_ok(), "{:?}", r.error());
    }
    server.shutdown();
    let (recovered, report) =
        SharedEngine::with_wal(state_of(&db), &wal, None).expect("recovery succeeds");
    assert_eq!(report.replayed, 3);
    assert!(!report.torn_tail);
    assert_eq!(recovered.generation(), engine.generation());
    let q = tab_bench::sqlq::parse("SELECT COUNT(*) FROM source").expect("parse");
    let count = |e: &SharedEngine| {
        let snap = e.snapshot();
        let s = snap.session("p").expect("p served");
        s.run(&q, None).expect("run").rows.expect("rows")[0][0]
            .as_int()
            .expect("int")
    };
    assert_eq!(count(&recovered), count(&engine));
    let _ = std::fs::remove_file(&wal);
}
