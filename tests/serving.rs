//! Serving-path integration tests: the wire must reproduce direct
//! [`Session`] results exactly, survive bad requests, publish writes
//! atomically, and shut down gracefully (DESIGN.md §14).

use std::sync::Arc;
use std::time::Duration;

use tab_bench::datagen::{generate_nref, NrefParams};
use tab_bench::engine::{EngineState, Outcome, Session, SharedEngine};
use tab_bench::eval::{build_1c, build_p};
use tab_bench::families::Family;
use tab_bench::server::{Client, ServeOptions, Server};
use tab_bench::storage::Database;
use tab_bench_harness::serve_bench::{
    run_serve_bench, LoadMode, RequestOutcome, ServeBenchOptions,
};

fn nref(proteins: usize) -> Database {
    generate_nref(NrefParams {
        proteins,
        seed: 2005,
    })
}

fn start_server(db: &Database) -> (Arc<SharedEngine>, Server) {
    let engine = Arc::new(SharedEngine::new(
        EngineState::new(db.clone())
            .with_config("p", build_p(db, "NREF"))
            .with_config("1c", build_1c(db, "NREF")),
    ));
    let server = Server::start(Arc::clone(&engine), ServeOptions::default()).expect("server boots");
    (engine, server)
}

/// M clients x K queries over the wire give exactly the verdicts and
/// (bit-identical) cost units of direct sessions over the same
/// generation.
#[test]
fn wire_results_equal_direct_session_results() {
    let db = nref(400);
    let p = build_p(&db, "NREF");
    let queries: Vec<_> = Family::Nref2J.enumerate(&db).into_iter().take(6).collect();
    let (_engine, mut server) = start_server(&db);
    let addr = server.addr();
    let wire: Vec<(String, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|c| {
                let queries = &queries;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut out = Vec::new();
                    // Client c takes queries c, c+3, ... — all clients
                    // together cover the list, some queries repeatedly.
                    for q in queries.iter().skip(c).chain(queries.iter()) {
                        let r = client.query("p", &q.to_string()).expect("wire query");
                        assert!(r.is_ok(), "error envelope: {:?}", r.error());
                        out.push((
                            r.str_field("verdict").expect("verdict"),
                            r.num_field("units").expect("units"),
                        ));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    server.shutdown();
    // Re-derive every expectation with a direct session: queries are
    // keyed by text, so wire order does not matter.
    let session = Session::new(&db, &p);
    let mut expected = std::collections::BTreeMap::new();
    for q in &queries {
        let r = session.run(q, None).expect("direct run");
        let Outcome::Done { units, .. } = r.outcome else {
            panic!("untimed query cannot time out")
        };
        expected.insert(q.to_string(), units);
    }
    assert_eq!(wire.len(), 6 * queries.len() - 3);
    for (verdict, units) in &wire {
        assert_eq!(verdict, "done");
        assert!(
            expected.values().any(|u| u.to_bits() == units.to_bits()),
            "wire units {units} not produced by any direct run"
        );
    }
}

/// A malformed request gets an error envelope and the connection keeps
/// answering; a panic-free server is part of the wire contract.
#[test]
fn error_envelopes_do_not_kill_the_connection() {
    let db = nref(300);
    let (_engine, mut server) = start_server(&db);
    let mut client = Client::connect(server.addr()).expect("connect");
    for bad in [
        "FROBNICATE",
        "QUERY p",
        "QUERY nosuchconfig SELECT COUNT(*) FROM protein",
        "QUERY p SELECT COUNT(*) FROM nosuchtable",
        "QUERY p INSERT INTO protein VALUES (1)",
        "ADVISE NREF2J Z",
    ] {
        let r = client.request(bad).expect("a response line");
        assert!(!r.is_ok(), "`{bad}` should fail");
        assert!(r.error().is_some(), "`{bad}` should carry an error");
    }
    // The same connection still works after six failures.
    let r = client.ping().expect("ping");
    assert!(r.is_ok());
    server.shutdown();
}

/// An INSERT through the wire publishes a new generation; queries on
/// other connections see either the old or the new generation in
/// full — and units through `p` and `1c` both reflect the insert once
/// visible.
#[test]
fn wire_insert_publishes_a_generation() {
    let db = nref(300);
    let (engine, mut server) = start_server(&db);
    let mut a = Client::connect(server.addr()).expect("connect a");
    let mut b = Client::connect(server.addr()).expect("connect b");
    let count_sql = "SELECT COUNT(*) FROM source";
    let before = b.query("p", count_sql).expect("count before");
    let n0 = {
        let snap = engine.snapshot();
        let s = snap.session("p").expect("p served");
        let q = tab_bench::sqlq::parse(count_sql).expect("parse");
        let rows = s.run(&q, None).expect("run").rows.expect("rows");
        rows[0][0].as_int().expect("int")
    };
    assert_eq!(before.int_field("generation"), Some(0));
    let ins = a
        .query(
            "p",
            "INSERT INTO source VALUES (99999, 1, 562, 'TEST1', 'test protein', 'testdb')",
        )
        .expect("wire insert");
    assert!(ins.is_ok(), "insert failed: {:?}", ins.error());
    assert_eq!(ins.str_field("verdict").as_deref(), Some("inserted"));
    assert_eq!(ins.int_field("generation"), Some(1));
    assert!(ins.num_field("units").expect("maintenance units") > 0.0);
    let after = b.query("p", count_sql).expect("count after");
    assert_eq!(after.int_field("generation"), Some(1));
    // The published generation is visible through every configuration.
    let after_1c = b.query("1c", count_sql).expect("count via 1c");
    assert_eq!(after_1c.int_field("generation"), Some(1));
    let snap = engine.snapshot();
    let q = tab_bench::sqlq::parse(count_sql).expect("parse");
    for config in ["p", "1c"] {
        let s = snap.session(config).expect("served");
        let rows = s.run(&q, None).expect("run").rows.expect("rows");
        assert_eq!(rows[0][0].as_int().expect("int"), n0 + 1, "via {config}");
    }
    server.shutdown();
}

/// SHUTDOWN over the wire stops the accept loop and `Server::wait`
/// returns; a fresh connect is then refused or dead.
#[test]
fn wire_shutdown_is_graceful() {
    let db = nref(300);
    let (_engine, mut server) = start_server(&db);
    let addr = server.addr();
    let client = Client::connect(addr).expect("connect");
    let r = client.shutdown().expect("shutdown ack");
    assert!(r.is_ok());
    assert_eq!(r.str_field("verb").as_deref(), Some("shutdown"));
    server.wait();
    assert!(server.is_stopping());
    // The listener is gone: a new connection cannot complete a request.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.request_line("PING").is_err(), "server still answering"),
    }
}

/// The serving benchmark's committed-baseline contract: per-request
/// claims are identical at any client count and in either loop shape,
/// and the report is deterministic apart from its wall-clock lines.
#[test]
fn serve_bench_claims_are_interleaving_free() {
    let db = nref(400);
    let base = ServeBenchOptions {
        clients: 1,
        requests: 10,
        workload: 5,
        mode: LoadMode::Closed,
        ..ServeBenchOptions::default()
    };
    let one = run_serve_bench(&db, "NREF", Family::Nref2J, &base).expect("1 client");
    let four = run_serve_bench(
        &db,
        "NREF",
        Family::Nref2J,
        &ServeBenchOptions {
            clients: 4,
            ..base.clone()
        },
    )
    .expect("4 clients");
    let open = run_serve_bench(
        &db,
        "NREF",
        Family::Nref2J,
        &ServeBenchOptions {
            clients: 4,
            mode: LoadMode::Open {
                interarrival: Duration::from_millis(1),
            },
            ..base.clone()
        },
    )
    .expect("open loop");
    assert_eq!(one.requests_csv(), four.requests_csv());
    assert_eq!(one.requests_csv(), open.requests_csv());
    assert_eq!(one.baseline_matches, 10);
    assert_eq!(four.baseline_matches, 10);
    assert_eq!(open.baseline_matches, 10);
    // Full BENCH_serve.json determinism at a fixed client count, minus
    // the dedicated wall-clock lines.
    let again = run_serve_bench(&db, "NREF", Family::Nref2J, &base).expect("repeat");
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.contains("wall_seconds") && !l.contains("qps"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&one.json()), strip(&again.json()));
    // Sanity on the claims themselves.
    for RequestOutcome { verdict, units, .. } in &one.outcomes {
        assert!(*verdict == "done" || *verdict == "timeout");
        assert!(*units > 0.0);
    }
}
