//! The observability layer's two contracts:
//!
//! 1. `tab explain`'s rendering distinguishes configurations — the same
//!    NREF3J query shows an `IndexScan` driver under `1C` and not under
//!    `P` — and pairs estimates with actuals.
//! 2. Tracing is observational only: a repro run with `--trace` writes
//!    byte-identical outputs to one without, while the trace itself
//!    captures operator, query, advisor, and span events.

use std::collections::BTreeMap;
use std::path::Path;

use tab_bench::datagen::{generate_nref, NrefParams};
use tab_bench::engine::{render_explain, ExecOpts, Session};
use tab_bench::eval::{build_1c, build_p, SuiteParams};
use tab_bench::families::Family;
use tab_bench::storage::Parallelism;
use tab_bench_harness::repro::{run_all, ReproConfig};
use tab_bench_harness::trace_summary::summarize;

#[test]
fn explain_shows_index_scan_under_1c_but_not_p() {
    let db = generate_nref(NrefParams {
        proteins: 400,
        seed: 7,
    });
    let p = build_p(&db, "NREF");
    let c1 = build_1c(&db, "NREF");
    let sp = Session::new(&db, &p);
    let s1 = Session::new(&db, &c1);
    // Find an NREF3J query whose chosen plan uses a secondary index under
    // 1C and none under P (P's only indexes are primary keys).
    let queries = Family::Nref3J.enumerate(&db);
    let separated = queries.iter().find(|q| {
        let d1 = s1.plan_query(q).expect("bind under 1C").describe();
        let dp = sp.plan_query(q).expect("bind under P").describe();
        d1.contains("IndexScan(") && !dp.contains("IndexScan(")
    });
    let q = separated.expect("an NREF3J query separating P from 1C by IndexScan");

    let mut renders = Vec::new();
    for s in [&sp, &s1] {
        let (plan, expl) = s.plan_query_explained(q).expect("plan");
        let (_, acts) = s.run_instrumented(q, Some(2_000.0)).expect("run");
        renders.push(render_explain(&plan, Some(&acts), Some(&expl)));
    }
    let (rp, r1) = (&renders[0], &renders[1]);
    // The golden shape: chosen plan line, estimate/actual pairing, and
    // the per-operator table, under both configurations.
    for r in [rp, r1] {
        assert!(r.starts_with("plan: "), "missing plan line:\n{r}");
        assert!(r.contains("estimated: "), "missing estimate:\n{r}");
        assert!(r.contains("est.cost"), "missing estimate column:\n{r}");
        assert!(r.contains("act.cost"), "missing actuals column:\n{r}");
    }
    let plan_line = |r: &str| r.lines().next().unwrap_or("").to_string();
    assert!(
        plan_line(r1).contains("IndexScan("),
        "1C plan should use the index:\n{r1}"
    );
    assert!(
        !plan_line(rp).contains("IndexScan("),
        "P plan should not have a secondary index to use:\n{rp}"
    );
    // Under 1C the decision trace shows the index *winning* an operator
    // slot (the `>` marker) — possibly as the inner side of a hash join
    // (`> HashJoin[IndexScan(…)]`) — not merely being considered.
    assert!(
        r1.lines()
            .any(|l| l.trim_start().starts_with('>') && l.contains("IndexScan(")),
        "1C should mark an index access path as chosen:\n{r1}"
    );
}

/// Golden explain under morsel parallelism: the rendered explain —
/// per-operator actuals included — is character-identical whether the
/// executor ran sequentially or with 4 query threads over 64-row
/// morsels. Per-morsel actuals must aggregate to exactly the
/// sequential counters, and the rendering must not leak the thread
/// count.
#[test]
fn explain_is_identical_at_one_and_four_query_threads() {
    let db = generate_nref(NrefParams {
        proteins: 400,
        seed: 7,
    });
    let c1 = build_1c(&db, "NREF");
    let queries = Family::Nref3J.enumerate(&db);
    let sample: Vec<_> = queries.iter().step_by(queries.len() / 4).take(4).collect();
    assert!(!sample.is_empty());
    for q in sample {
        let mut renders = Vec::new();
        for threads in [1, 4] {
            let exec = ExecOpts {
                par: Parallelism::new(threads),
                morsel_rows: 64,
                ..ExecOpts::default()
            };
            let s = Session::new(&db, &c1).with_exec(exec);
            let (plan, expl) = s.plan_query_explained(q).expect("plan");
            let (_, acts) = s.run_instrumented(q, Some(2_000.0)).expect("run");
            renders.push(render_explain(&plan, Some(&acts), Some(&expl)));
        }
        assert_eq!(
            renders[0], renders[1],
            "explain differs between 1 and 4 query threads for:\n{q}"
        );
    }
}

fn tiny(out: &Path) -> ReproConfig {
    ReproConfig {
        params: SuiteParams {
            nref_proteins: 400,
            tpch_scale: 0.002,
            workload_size: 8,
            timeout_units: 500.0,
            seed: 7,
            ..SuiteParams::small()
        }
        .with_threads(2),
        out_dir: out.to_path_buf(),
        trace: None,
        faults: None,
        resume: false,
    }
}

/// Read every output file, excluding `timings.json` and the `BENCH_*`
/// records — both hold wall-clock, which varies run to run.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("read output dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == "timings.json" || name.starts_with("BENCH_") {
            continue;
        }
        out.insert(name, std::fs::read(entry.path()).expect("read output file"));
    }
    out
}

/// Drop the wall-clock numbers from a `BENCH_*` document so the
/// deterministic remainder (names, counters, cost units) can be compared
/// across runs.
fn strip_wall_clock(doc: &str) -> String {
    let mut out = String::new();
    for piece in doc.split(
        // Both bench schemas render wall-clock as `"…wall_seconds": N`.
        "wall_seconds\": ",
    ) {
        out.push_str(
            piece
                .split_once(|c: char| !c.is_ascii_digit() && c != '.')
                .map(|(_, rest)| rest)
                .unwrap_or(""),
        );
    }
    out
}

#[test]
fn traced_repro_outputs_are_byte_identical_to_untraced() {
    let base = std::env::temp_dir().join(format!("tab_observability_{}", std::process::id()));
    let plain_dir = base.join("plain");
    let traced_dir = base.join("traced");
    let trace_path = base.join("trace.jsonl");
    std::fs::create_dir_all(&base).expect("create temp base");

    run_all(&tiny(&plain_dir)).expect("untraced run");
    run_all(&tiny(&traced_dir).with_trace(trace_path.clone())).expect("traced run");

    // Every deterministic output file is byte-identical.
    let plain = snapshot(&plain_dir);
    let traced = snapshot(&traced_dir);
    assert_eq!(
        plain.keys().collect::<Vec<_>>(),
        traced.keys().collect::<Vec<_>>(),
        "same output files"
    );
    for (name, bytes) in &plain {
        assert_eq!(
            bytes, &traced[name],
            "{name} differs between traced and untraced runs"
        );
    }
    // The BENCH_* records agree once wall-clock is stripped: tracing
    // must not change phase structure, counters, or cost units.
    for name in ["BENCH_repro_small.json", "BENCH_advisor.json"] {
        let a = std::fs::read_to_string(plain_dir.join(name)).expect("plain bench");
        let b = std::fs::read_to_string(traced_dir.join(name)).expect("traced bench");
        assert_eq!(strip_wall_clock(&a), strip_wall_clock(&b), "{name} differs");
    }

    // The trace itself carries every event family of the schema.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file");
    for event in [
        "span_begin",
        "span_end",
        "query",
        "operator",
        "advisor_begin",
        "advisor_round",
        "advisor_end",
    ] {
        assert!(
            trace
                .lines()
                .any(|l| l.contains(&format!("\"event\":\"{event}\""))),
            "trace is missing {event} events"
        );
    }
    for l in trace.lines() {
        assert!(
            l.starts_with("{\"schema\":\"tab-trace-v1\""),
            "bad line: {l}"
        );
    }

    // And the summary tool digests it into per-operator rows.
    let summary = summarize(&trace);
    assert!(summary.contains("SeqScan"), "no SeqScan row:\n{summary}");
    assert!(summary.contains("timeouts"), "no query table:\n{summary}");

    let _ = std::fs::remove_dir_all(&base);
}
