//! Concurrent snapshot-isolation tests for the multi-session engine:
//! a reader mid-scan must never observe a partially published
//! generation, and pinned snapshots must stay frozen while writers
//! publish (DESIGN.md §14).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tab_bench::engine::{EngineState, SharedEngine};
use tab_bench::eval::build_p;
use tab_bench::sqlq::{parse, parse_statement, Statement};
use tab_bench::storage::{
    ColType, ColumnDef, Configuration, Database, IndexSpec, Table, TableSchema, Value,
};

/// A database whose single table carries an internally redundant
/// invariant: both cells of every row hold the same value, and the
/// table always has exactly `ROWS + generation` rows. A scan that sums
/// one column and counts rows can therefore detect any torn state.
const ROWS: i64 = 2_000;

fn redundant_state() -> EngineState {
    let mut db = Database::new();
    let mut t = Table::new(TableSchema::new(
        "t",
        vec![
            ColumnDef::new("a", ColType::Int),
            ColumnDef::new("b", ColType::Int),
        ],
    ));
    for i in 0..ROWS {
        t.insert(vec![Value::Int(i), Value::Int(i)]);
    }
    db.add_table(t);
    db.collect_stats();
    let built = {
        let mut cfg = Configuration::named("ix");
        cfg.indexes.push(IndexSpec::new("t", vec![0]));
        tab_bench::storage::BuiltConfiguration::build(cfg, &db)
    };
    EngineState::new(db).with_config("ix", built)
}

fn insert_of(sql: &str) -> tab_bench::sqlq::Insert {
    match parse_statement(sql).expect("parses") {
        Statement::Insert(i) => i,
        other => panic!("expected insert: {other:?}"),
    }
}

/// Readers hammer COUNT/SUM scans while a writer publishes inserts as
/// fast as it can. Every observation must be a whole generation:
/// `COUNT(*) = ROWS + g` and `SUM(a) = SUM(b)` for some `g`, and the
/// generations a thread sees must be monotone.
#[test]
fn readers_never_observe_partially_published_generations() {
    let engine = Arc::new(SharedEngine::new(redundant_state()));
    let stop = Arc::new(AtomicBool::new(false));
    const WRITES: i64 = 60;
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let count_q = parse("SELECT COUNT(*) FROM t").expect("parse");
                let scan_q = parse("SELECT t.a, t.b FROM t").expect("parse");
                let mut last_gen = 0;
                let mut done = false;
                // One final full validation after the writer stops, so
                // the test asserts on the last generation even if this
                // thread was starved during the writes.
                while !done {
                    done = stop.load(Ordering::Relaxed);
                    let snap = engine.snapshot();
                    assert!(snap.seq() >= last_gen, "generations went backwards");
                    last_gen = snap.seq();
                    let s = snap.session("ix").expect("ix served");
                    let count = s.run(&count_q, None).expect("count").rows.expect("rows")[0][0]
                        .as_int()
                        .expect("int");
                    assert_eq!(
                        count,
                        ROWS + snap.seq() as i64,
                        "row count does not match the pinned generation"
                    );
                    // The same snapshot, scanned row by row mid-writes,
                    // is internally consistent: both cells of a row
                    // were written together or not at all.
                    let rows = s.run(&scan_q, None).expect("scan").rows.expect("rows");
                    assert_eq!(rows.len(), count as usize);
                    for row in &rows {
                        assert_eq!(
                            row[0],
                            row[1],
                            "torn row visible at generation {}",
                            snap.seq()
                        );
                    }
                }
                last_gen
            })
        })
        .collect();
    for g in 0..WRITES {
        let v = ROWS + g;
        let out = engine
            .insert(
                &insert_of(&format!("INSERT INTO t VALUES ({v}, {v})")),
                "ix",
            )
            .expect("insert");
        assert_eq!(out.generation, (g + 1) as u64);
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert_eq!(
            r.join().expect("reader panicked"),
            WRITES as u64,
            "final validation must see the last generation"
        );
    }
}

/// A snapshot taken before a burst of writes answers identically after
/// them — byte-for-byte on rows and bit-for-bit on cost units — while
/// a fresh snapshot sees every write, heap and index alike.
#[test]
fn pinned_snapshot_is_immutable_while_fresh_snapshots_advance() {
    let engine = SharedEngine::new(redundant_state());
    let q = parse("SELECT t.b FROM t WHERE t.a = 12").expect("parse");
    let pinned = engine.snapshot();
    let before = {
        let s = pinned.session("ix").expect("served");
        s.run(&q, None).expect("run")
    };
    for i in 0..10 {
        // Three of the writes land directly on the probed key.
        let key = if i % 3 == 0 { 12 } else { ROWS + i };
        engine
            .insert(
                &insert_of(&format!("INSERT INTO t VALUES ({key}, {key})")),
                "ix",
            )
            .expect("insert");
    }
    let after = {
        let s = pinned.session("ix").expect("served");
        s.run(&q, None).expect("run")
    };
    assert_eq!(before.rows, after.rows, "pinned snapshot changed");
    assert_eq!(
        before.outcome.units_lower_bound().to_bits(),
        after.outcome.units_lower_bound().to_bits(),
        "pinned snapshot cost drifted"
    );
    let fresh = engine.snapshot();
    assert_eq!(fresh.seq(), 10);
    let rows = fresh
        .session("ix")
        .expect("served")
        .run(&q, None)
        .expect("run")
        .rows
        .expect("rows");
    // Generation 0 had one row with a=12; four writes added key 12
    // (i = 0, 3, 6, 9), and the index-backed probe finds all of them.
    assert_eq!(rows.len(), before.rows.as_ref().expect("rows").len() + 4);
}

/// The real NREF database through the same machinery: a writer
/// appending to `source` never perturbs an in-flight `p`-config scan,
/// and per-request results on a pinned snapshot are reproducible.
#[test]
fn nref_scan_mid_write_is_reproducible() {
    let db = tab_bench::datagen::generate_nref(tab_bench::datagen::NrefParams {
        proteins: 300,
        seed: 2005,
    });
    let p = build_p(&db, "NREF");
    let engine = Arc::new(SharedEngine::new(EngineState::new(db).with_config("p", p)));
    let q = parse("SELECT COUNT(*) FROM source").expect("parse");
    let snap = engine.snapshot();
    let writer = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || {
            for i in 0..20 {
                engine
                    .insert(
                        &insert_of(&format!(
                            "INSERT INTO source VALUES ({}, 1, 562, 'T{i}', 'test', 'db')",
                            100_000 + i
                        )),
                        "p",
                    )
                    .expect("insert");
            }
        })
    };
    // The pinned snapshot's answer is stable no matter how the writer
    // interleaves with these repeated scans.
    let s = snap.session("p").expect("p served");
    let first = s.run(&q, None).expect("run").rows.expect("rows")[0][0]
        .as_int()
        .expect("int");
    for _ in 0..10 {
        let again = s.run(&q, None).expect("run").rows.expect("rows")[0][0]
            .as_int()
            .expect("int");
        assert_eq!(first, again);
    }
    writer.join().expect("writer");
    let fresh = engine.snapshot();
    assert_eq!(fresh.seq(), 20);
    let final_count = fresh
        .session("p")
        .expect("p served")
        .run(&q, None)
        .expect("run")
        .rows
        .expect("rows")[0][0]
        .as_int()
        .expect("int");
    assert_eq!(final_count, first + 20);
}
