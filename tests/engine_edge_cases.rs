//! Edge-case behaviour of the engine that the shape-randomized property
//! tests can hit only occasionally: cartesian products, empty inputs,
//! NULL semantics, and estimate/actual consistency around them.

use tab_bench::engine::{bind, naive, Session};
use tab_bench::sqlq::parse;
use tab_bench::storage::{
    BuiltConfiguration, ColType, ColumnDef, Configuration, Database, IndexSpec, Table, TableSchema,
    Value,
};

fn db_with(r_rows: &[(Option<i64>, i64)], s_rows: &[i64]) -> Database {
    let mut db = Database::new();
    let mut r = Table::new(TableSchema::new(
        "r",
        vec![
            ColumnDef::new("a", ColType::Int),
            ColumnDef::new("b", ColType::Int),
        ],
    ));
    for &(a, b) in r_rows {
        r.insert(vec![
            a.map(Value::Int).unwrap_or(Value::Null),
            Value::Int(b),
        ]);
    }
    let mut s = Table::new(TableSchema::new(
        "s",
        vec![ColumnDef::new("a", ColType::Int)],
    ));
    for &a in s_rows {
        s.insert(vec![Value::Int(a)]);
    }
    db.add_table(r);
    db.add_table(s);
    db.collect_stats();
    db
}

fn run_both(db: &Database, sql: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let built = BuiltConfiguration::build(Configuration::named("p"), db);
    let q = parse(sql).unwrap();
    let bound = bind(&q, db).unwrap();
    let mut expect = naive::evaluate(&bound, db);
    let mut got = Session::new(db, &built)
        .run(&q, None)
        .unwrap()
        .rows
        .unwrap();
    expect.sort();
    got.sort();
    (expect, got)
}

#[test]
fn cartesian_product_counts() {
    let db = db_with(&[(Some(1), 10), (Some(2), 20)], &[5, 6, 7]);
    let (expect, got) = run_both(&db, "SELECT r.b, COUNT(*) FROM r, s GROUP BY r.b");
    assert_eq!(expect, got);
    // Each r row pairs with all 3 s rows.
    assert!(got.iter().all(|row| row[1] == Value::Int(3)));
}

#[test]
fn count_over_empty_input_is_zero_row() {
    let db = db_with(&[], &[]);
    let (expect, got) = run_both(&db, "SELECT COUNT(*) FROM r");
    assert_eq!(expect, got);
    assert_eq!(got, vec![vec![Value::Int(0)]]);
}

#[test]
fn group_by_over_empty_input_is_empty() {
    let db = db_with(&[], &[1]);
    let (expect, got) = run_both(&db, "SELECT r.b, COUNT(*) FROM r GROUP BY r.b");
    assert_eq!(expect, got);
    assert!(got.is_empty());
}

#[test]
fn nulls_never_join() {
    // r.a contains NULLs; NULL = NULL must not match.
    let db = db_with(&[(None, 1), (Some(5), 2), (None, 3)], &[5]);
    let (expect, got) = run_both(&db, "SELECT COUNT(*) FROM r, s WHERE r.a = s.a");
    assert_eq!(expect, got);
    assert_eq!(got, vec![vec![Value::Int(1)]]);
}

#[test]
fn nulls_fail_equality_and_range_filters() {
    let db = db_with(&[(None, 1), (Some(0), 2), (Some(9), 3)], &[]);
    let (e1, g1) = run_both(&db, "SELECT COUNT(*) FROM r WHERE r.a = 0");
    assert_eq!(e1, g1);
    assert_eq!(g1, vec![vec![Value::Int(1)]]);
    let (e2, g2) = run_both(&db, "SELECT COUNT(*) FROM r WHERE r.a >= 0");
    assert_eq!(e2, g2);
    assert_eq!(g2, vec![vec![Value::Int(2)]], "NULL must fail ranges too");
}

#[test]
fn count_distinct_ignores_nulls() {
    let db = db_with(&[(None, 1), (Some(4), 2), (Some(4), 3)], &[]);
    let (expect, got) = run_both(&db, "SELECT COUNT(DISTINCT r.a) FROM r");
    assert_eq!(expect, got);
    assert_eq!(got, vec![vec![Value::Int(1)]]);
}

#[test]
fn index_probe_on_missing_value_is_cheap_and_empty() {
    let mut db = db_with(&[], &[]);
    let mut r = Table::new(TableSchema::new(
        "big",
        vec![
            ColumnDef::new("a", ColType::Int),
            ColumnDef::new("b", ColType::Int),
        ],
    ));
    for i in 0..50_000i64 {
        r.insert(vec![Value::Int(i % 500), Value::Int(i)]);
    }
    db.add_table(r);
    db.collect_stats();
    let mut cfg = Configuration::named("ix");
    cfg.indexes.push(IndexSpec::new("big", vec![0]));
    let built = BuiltConfiguration::build(cfg, &db);
    let s = Session::new(&db, &built);
    let q = parse("SELECT COUNT(*) FROM big b WHERE b.a = 123456").unwrap();
    let r = s.run(&q, None).unwrap();
    assert_eq!(r.rows.unwrap(), vec![vec![Value::Int(0)]]);
    // Proving emptiness through the index costs a handful of pages, not
    // a scan.
    assert!(
        r.outcome.units().unwrap() < 20.0,
        "units = {:?}",
        r.outcome.units()
    );
}

#[test]
fn estimates_are_finite_and_positive_for_all_shapes() {
    let db = db_with(&[(Some(1), 2), (Some(3), 4)], &[1, 3]);
    let built = BuiltConfiguration::build(Configuration::named("p"), &db);
    let s = Session::new(&db, &built);
    for sql in [
        "SELECT COUNT(*) FROM r",
        "SELECT r.b, COUNT(*) FROM r, s WHERE r.a = s.a GROUP BY r.b",
        "SELECT COUNT(*) FROM r, s",
        "SELECT COUNT(*) FROM r WHERE r.a >= 2 AND r.a < 100",
        "SELECT COUNT(*) FROM r WHERE r.a IN (SELECT a FROM s GROUP BY a HAVING COUNT(*) < 2)",
    ] {
        let est = s.estimate(&parse(sql).unwrap()).unwrap();
        assert!(est.is_finite() && est > 0.0, "estimate for `{sql}` = {est}");
    }
}
