//! The advisor-side determinism guarantee: the greedy what-if search
//! returns a byte-identical recommendation — and bit-identical
//! per-round gains and objective values — with the cost cache on or
//! off, at any thread count.

use tab_advisor::{
    generate_candidates, greedy_select_with_stats, CandidateStyle, GreedyOptions, SearchStats,
};
use tab_core::{build_p, prepare_workload_db_with, space_budget};
use tab_datagen::{generate_nref, generate_tpch, Distribution, NrefParams, TpchParams};
use tab_families::Family;
use tab_storage::{Configuration, Database, Parallelism};

fn check_equivalence(db: &Database, label: &str, family: Family, style: CandidateStyle) {
    let p = build_p(db, label);
    let budget = space_budget(db, label);
    let w = prepare_workload_db_with(db, family, &p, 8, 7, Parallelism::sequential());
    let cands = generate_candidates(db, &w, style);
    assert!(!cands.is_empty(), "{label}: no candidates generated");

    let run = |cache: bool, threads: usize| -> (Configuration, SearchStats) {
        greedy_select_with_stats(
            db,
            &p,
            &w,
            cands.clone(),
            budget,
            "R",
            GreedyOptions {
                cache,
                par: Parallelism::new(threads),
                ..GreedyOptions::default()
            },
        )
    };

    // Reference: cache off, sequential — the pre-memoization search.
    let (want_cfg, want) = run(false, 1);
    assert!(
        !want.rounds.is_empty(),
        "{label}: the search should accept at least one structure"
    );
    for (cache, threads) in [(true, 1), (true, 2), (true, 8), (false, 2)] {
        let (cfg, got) = run(cache, threads);
        let tag = format!("{label} cache={cache} threads={threads}");
        assert_eq!(cfg, want_cfg, "{tag}: recommendation differs");
        assert_eq!(got.rounds.len(), want.rounds.len(), "{tag}: round count");
        for (a, b) in got.rounds.iter().zip(&want.rounds) {
            assert_eq!(a.candidate, b.candidate, "{tag}: pick differs");
            assert_eq!(a.gain.to_bits(), b.gain.to_bits(), "{tag}: gain differs");
            assert_eq!(
                a.objective_after.to_bits(),
                b.objective_after.to_bits(),
                "{tag}: objective differs"
            );
        }
        // The search issues the same requests in every mode; with the
        // cache on, some are answered without planning.
        assert_eq!(got.whatif_calls, want.whatif_calls, "{tag}: what-if calls");
        assert_eq!(
            got.planner_calls + got.cache_hits,
            got.whatif_calls,
            "{tag}: counters inconsistent"
        );
        if cache {
            assert!(got.cache_hits > 0, "{tag}: expected cache hits");
            assert!(
                got.planner_calls < want.planner_calls,
                "{tag}: cache saved no planner invocations"
            );
        } else {
            assert_eq!(got.cache_hits, 0, "{tag}: hits with cache disabled");
            assert_eq!(
                got.planner_calls, want.planner_calls,
                "{tag}: uncached planner calls"
            );
        }
    }
}

#[test]
fn nref_recommendation_identical_across_cache_and_threads() {
    let db = generate_nref(NrefParams {
        proteins: 400,
        seed: 7,
    });
    check_equivalence(&db, "NREF", Family::Nref2J, CandidateStyle::Covering);
}

#[test]
fn tpch_recommendation_identical_across_cache_and_threads() {
    let db = generate_tpch(TpchParams {
        scale: 0.002,
        distribution: Distribution::Zipf(1.0),
        seed: 8,
    });
    check_equivalence(
        &db,
        "SkTH",
        Family::SkTH3J,
        CandidateStyle::CoveringWithViews,
    );
}
