//! End-to-end integration tests over a small benchmark suite: the
//! qualitative claims of the paper must hold in miniature.

use tab_bench::advisor::{AdvisorInput, Recommender, SystemB, SystemC};
use tab_bench::engine::Session;
use tab_bench::eval::{
    build_1c, build_p, estimate_workload, prepare_workload, run_workload, space_budget, Suite,
    SuiteParams,
};
use tab_bench::families::Family;
use tab_bench::storage::BuiltConfiguration;

fn small_suite() -> Suite {
    Suite::build(SuiteParams {
        nref_proteins: 2_000,
        tpch_scale: 0.005,
        workload_size: 25,
        timeout_units: 3_000.0,
        seed: 42,
        ..SuiteParams::small()
    })
}

#[test]
fn one_c_beats_p_on_nref2j() {
    let suite = small_suite();
    let db = &suite.nref;
    let p = build_p(db, "NREF");
    let c1 = build_1c(db, "NREF");
    let w = prepare_workload(&suite, Family::Nref2J, &p);
    let run_p = run_workload(db, &p, &w, suite.params.timeout_units);
    let run_1c = run_workload(db, &c1, &w, suite.params.timeout_units);
    let total_p = run_p.total_lower_bound_sim_seconds();
    let total_1c = run_1c.total_lower_bound_sim_seconds();
    assert!(
        total_1c * 2.0 < total_p,
        "1C should be much faster: 1C={total_1c:.0}s P={total_p:.0}s"
    );
    assert!(run_1c.timeout_count() <= run_p.timeout_count());
}

#[test]
fn results_identical_across_all_configurations() {
    let suite = small_suite();
    let db = &suite.nref;
    let p = build_p(db, "NREF");
    let c1 = build_1c(db, "NREF");
    let w = prepare_workload(&suite, Family::Nref3J, &p);
    let sp = Session::new(db, &p);
    let s1 = Session::new(db, &c1);
    let mut compared = 0;
    for q in w.iter().take(8) {
        let rp = sp.run(q, None).unwrap().rows.unwrap();
        let r1 = s1.run(q, None).unwrap().rows.unwrap();
        let mut rp = rp;
        let mut r1 = r1;
        rp.sort();
        r1.sort();
        assert_eq!(rp, r1, "query `{q}` differs across configurations");
        compared += 1;
    }
    assert!(compared > 0);
}

#[test]
fn recommended_configuration_stays_within_budget() {
    let suite = small_suite();
    let db = &suite.skth;
    let p = build_p(db, "SkTH");
    let budget = space_budget(db, "SkTH");
    let w = prepare_workload(&suite, Family::SkTH3Js, &p);
    for rec in [&SystemB as &dyn Recommender, &SystemC] {
        let cfg = rec
            .recommend(&AdvisorInput {
                db,
                current: &p,
                workload: &w,
                budget_bytes: budget,
                par: tab_bench::storage::Parallelism::sequential(),
                trace: tab_bench::storage::Trace::disabled(),
            })
            .expect("recommendation");
        let built = BuiltConfiguration::build(cfg, db);
        let added = built
            .report
            .aux_bytes()
            .saturating_sub(p.report.aux_bytes());
        // Estimated sizes guide the search; allow modest estimation slack.
        assert!(
            added as f64 <= budget as f64 * 1.5,
            "system {} exceeded budget: {added} vs {budget}",
            rec.name()
        );
    }
}

#[test]
fn estimates_rank_1c_at_or_below_p() {
    let suite = small_suite();
    let db = &suite.nref;
    let p = build_p(db, "NREF");
    let c1 = build_1c(db, "NREF");
    let w = prepare_workload(&suite, Family::Nref2J, &p);
    let e_p: f64 = estimate_workload(db, &p, &w).iter().sum();
    let e_1c: f64 = estimate_workload(db, &c1, &w).iter().sum();
    assert!(
        e_1c <= e_p,
        "optimizer should never estimate 1C above P in total: {e_1c} vs {e_p}"
    );
}

#[test]
fn timeouts_abort_and_are_reported() {
    let suite = small_suite();
    let db = &suite.nref;
    let p = build_p(db, "NREF");
    let w = prepare_workload(&suite, Family::Nref2J, &p);
    // A budget so small everything times out.
    let run = run_workload(db, &p, &w, 0.01);
    assert_eq!(run.timeout_count(), w.len());
    assert_eq!(run.cfc().completed_fraction(), 0.0);
}

#[test]
fn insertion_costs_order_p_r_1c() {
    let suite = small_suite();
    let db = &suite.nref;
    let p = build_p(db, "NREF");
    let c1 = build_1c(db, "NREF");
    let ip = tab_bench::eval::per_insert_cost(&p, "neighboring_seq");
    let i1 = tab_bench::eval::per_insert_cost(&c1, "neighboring_seq");
    assert!(
        ip < i1,
        "1C must pay more per insert than P: P={ip} 1C={i1}"
    );
}
