//! Integration tests for §5's estimation-gap findings: hypothetical
//! estimates are systematically more conservative than real estimates on
//! skewed data, and the gap shrinks on uniform data.

use tab_bench::eval::{
    build_1c, build_p, estimate_workload, estimate_workload_hypothetical, prepare_workload, Suite,
    SuiteParams,
};
use tab_bench::families::Family;

fn suite() -> Suite {
    Suite::build(SuiteParams {
        nref_proteins: 2_000,
        tpch_scale: 0.005,
        workload_size: 25,
        timeout_units: 3_000.0,
        seed: 7,
        ..SuiteParams::small()
    })
}

/// Median of a sample.
fn median(v: &[f64]) -> f64 {
    quantile(v, 0.5)
}

/// q-quantile of a sample.
fn quantile(v: &[f64], q: f64) -> f64 {
    let mut s: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    s[((s.len() as f64 * q) as usize).min(s.len() - 1)]
}

#[test]
fn hypothetical_1c_more_conservative_than_real_1c() {
    // Figure 10's key contrast: H1C is "much more conservative about the
    // advantages of 1C than E1C".
    let s = suite();
    let db = &s.nref;
    let p = build_p(db, "NREF");
    let c1 = build_1c(db, "NREF");
    let w = prepare_workload(&s, Family::Nref3J, &p);

    let e1c = estimate_workload(db, &c1, &w);
    let h1c = estimate_workload_hypothetical(db, &p, &c1.config, &w);
    // Figure 10 contrasts paired per-query estimates: for the typical
    // query the uniformity assumption overstates 1C's cost (selective
    // constants look average), so per-query H1C/E1C sits above 1.
    let ratios: Vec<f64> = h1c
        .iter()
        .zip(&e1c)
        .filter(|(a, b)| a.is_finite() && b.is_finite() && **b > 0.0)
        .map(|(a, b)| a / b)
        .collect();
    let ratio = median(&ratios);
    assert!(
        ratio > 1.05,
        "paired median H1C/E1C should exceed 1 (conservatism), got {ratio:.3}"
    );
}

#[test]
fn estimates_order_p_above_1c() {
    // Figure 10: "The optimizer correctly estimates that the behavior of
    // R improves over P and that 1C improves even further."
    let s = suite();
    let db = &s.nref;
    let p = build_p(db, "NREF");
    let c1 = build_1c(db, "NREF");
    let w = prepare_workload(&s, Family::Nref3J, &p);
    // At the selective quartile the probe-based 1C plans are estimated
    // far cheaper than P's scans (the head of Figure 10's curves).
    let ep = quantile(&estimate_workload(db, &p, &w), 0.25);
    let e1c = quantile(&estimate_workload(db, &c1, &w), 0.25);
    assert!(
        e1c < ep,
        "q25 E1C ({e1c:.0}) should be below q25 EP ({ep:.0})"
    );
}

#[test]
fn hypothetical_gap_smaller_on_uniform_data() {
    // The uniformity assumption is *correct* on UnTH, so H should track
    // E much more closely there than on NREF (skewed).
    let s = suite();

    // Gap metric: median absolute log-ratio between H and E — zero when
    // hypothetical estimates are perfect, large under estimation error.
    let gap = |db: &tab_bench::storage::Database, label: &str, fam: Family| {
        let p = build_p(db, label);
        let c1 = build_1c(db, label);
        let w = prepare_workload(&s, fam, &p);
        let e = estimate_workload(db, &c1, &w);
        let h = estimate_workload_hypothetical(db, &p, &c1.config, &w);
        let devs: Vec<f64> = e
            .iter()
            .zip(&h)
            .filter(|(a, b)| a.is_finite() && b.is_finite() && **a > 0.0 && **b > 0.0)
            .map(|(a, b)| (b / a).ln().abs())
            .collect();
        median(&devs)
    };

    let gap_skewed = gap(&s.nref, "NREF", Family::Nref3J);
    let gap_uniform = gap(&s.unth, "UnTH", Family::UnTH3J);
    assert!(
        gap_uniform < gap_skewed,
        "uniform-data hypothetical gap ({gap_uniform:.3}) should be below skewed ({gap_skewed:.3})"
    );
}
