//! Integration tests for the operational surfaces: CSV round-trips of
//! generated databases and workload compression over real families.

use tab_bench::datagen::{generate_nref, NrefParams};
use tab_bench::families::{compress, shape_signature, Family};
use tab_bench::storage::{export_table, import_table};

#[test]
fn generated_nref_round_trips_through_csv() {
    let db = generate_nref(NrefParams {
        proteins: 300,
        seed: 21,
    });
    let dir = std::env::temp_dir().join(format!("tab_csv_it_{}", std::process::id()));
    for name in ["protein", "taxonomy", "identical_seq"] {
        let table = db.table(name).unwrap();
        let path = dir.join(format!("{name}.csv"));
        export_table(table, &path).unwrap();
        let back = import_table(table.schema().clone(), &path).unwrap();
        assert_eq!(back.n_rows(), table.n_rows(), "{name} row count");
        // Spot-check several rows across the file.
        for i in [0usize, table.n_rows() / 2, table.n_rows() - 1] {
            assert_eq!(back.row(i as u32), table.row(i as u32), "{name} row {i}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn family_compression_reduces_to_templates() {
    let db = generate_nref(NrefParams {
        proteins: 400,
        seed: 22,
    });
    let family = Family::Nref3J.enumerate(&db);
    assert!(family.len() > 50);
    let compressed = compress(&family, usize::MAX);
    // Compression collapses the per-constant variants: fewer shapes
    // than queries, and templates instantiated with the full three
    // k1/k2/k3 tiers collapse to weight-3 entries.
    assert!(
        compressed.len() < family.len(),
        "{} shapes from {} queries",
        compressed.len(),
        family.len()
    );
    assert!(compressed.iter().any(|e| e.weight >= 3));
    // Weights account for every original query.
    let total: usize = compressed.iter().map(|e| e.weight).sum();
    assert_eq!(total, family.len());
    // Every representative's shape is unique.
    let mut sigs: Vec<String> = compressed
        .iter()
        .map(|e| shape_signature(&e.query))
        .collect();
    sigs.sort();
    sigs.dedup();
    assert_eq!(sigs.len(), compressed.len());
}

#[test]
fn compressed_workload_is_executable() {
    let db = generate_nref(NrefParams {
        proteins: 300,
        seed: 23,
    });
    let family = Family::Nref2J.enumerate(&db);
    let compressed = compress(&family, 5);
    let p = tab_bench::eval::build_p(&db, "NREF");
    let session = tab_bench::engine::Session::new(&db, &p);
    for e in &compressed {
        let r = session.run(&e.query, None).unwrap();
        assert!(r.rows.is_some(), "representative failed: {}", e.query);
    }
}

mod csv_properties {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tab_bench::storage::{
        export_table, import_table, ColType, ColumnDef, Table, TableSchema, Value,
    };

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("i", ColType::Int),
                ColumnDef::new("s", ColType::Str),
                ColumnDef::new("f", ColType::Float),
            ],
        )
    }

    /// Strings over printable ASCII plus the CSV-hostile characters:
    /// quotes, commas, CR, LF, tabs — and occasionally the literal
    /// string "NULL".
    fn hostile_string(rng: &mut StdRng) -> String {
        if rng.random_bool(0.05) {
            return "NULL".to_string();
        }
        let len = rng.random_range(0usize..30);
        (0..len)
            .map(|_| {
                if rng.random_bool(0.25) {
                    ['"', ',', '\n', '\r', '\t'][rng.random_range(0usize..5)]
                } else {
                    rng.random_range(0x20u32..0x7F) as u8 as char
                }
            })
            .collect()
    }

    /// Arbitrary content — including embedded quotes, commas, CR/LF,
    /// the literal string "NULL", and NULL values — must round-trip
    /// exactly through export + import.
    #[test]
    fn csv_round_trips_arbitrary_content() {
        let mut rng = StdRng::seed_from_u64(0xC57_0001);
        for case in 0..48 {
            let n = rng.random_range(0usize..40);
            let mut t = Table::new(schema());
            for _ in 0..n {
                let i: u64 = rng.random();
                let s = if rng.random_bool(0.25) {
                    Value::Null
                } else {
                    Value::str(hostile_string(&mut rng))
                };
                let f = if rng.random_bool(0.25) {
                    Value::Null
                } else {
                    Value::Float((rng.random::<f64>() - 0.5) * 2.0e9)
                };
                t.insert(vec![Value::Int(i as i64), s, f]);
            }
            let path = std::env::temp_dir().join(format!(
                "tab_csv_prop_{}_{}.csv",
                std::process::id(),
                case
            ));
            export_table(&t, &path).unwrap();
            let back = import_table(schema(), &path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(back.n_rows(), t.n_rows(), "case {case}");
            for i in 0..t.n_rows() {
                assert_eq!(back.row(i as u32), t.row(i as u32), "case {case} row {i}");
            }
        }
    }
}
