//! Property tests for the evaluation framework itself: CFC curves,
//! goals, histograms, and the Zipf sampler.

use proptest::prelude::*;

use tab_bench::datagen::Zipf;
use tab_bench::eval::{Cfc, Goal, LogHistogram, RatioHistogram};

fn times_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![
            9 => (0.01f64..10_000.0),
            1 => Just(f64::INFINITY),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// CFC is monotone non-decreasing and bounded by the completed
    /// fraction.
    #[test]
    fn cfc_monotone_and_bounded(times in times_strategy(), xs in proptest::collection::vec(0.001f64..1e6, 1..30)) {
        let cfc = Cfc::from_values(&times);
        let mut xs = xs;
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for &x in &xs {
            let v = cfc.at(x);
            prop_assert!(v >= last - 1e-12);
            prop_assert!(v <= cfc.completed_fraction() + 1e-12);
            last = v;
        }
    }

    /// Quantile and at() are consistent: at least fraction p completes
    /// by quantile(p).
    #[test]
    fn quantile_consistent(times in times_strategy(), p in 0.01f64..1.0) {
        let cfc = Cfc::from_values(&times);
        if let Some(t) = cfc.quantile(p) {
            // Evaluate just above t (strict inequality in the definition).
            let v = cfc.at(t * (1.0 + 1e-9) + 1e-12);
            prop_assert!(v + 1e-9 >= p.min(cfc.completed_fraction()),
                "v={v} p={p}");
        } else {
            prop_assert!(p > cfc.completed_fraction() - 1e-9 || cfc.size() == 0);
        }
    }

    /// Dominance is antisymmetric and irreflexive.
    #[test]
    fn dominance_antisymmetric(a in times_strategy(), b in times_strategy()) {
        let ca = Cfc::from_values(&a);
        let cb = Cfc::from_values(&b);
        prop_assert!(!(ca.dominates(&cb) && cb.dominates(&ca)));
        prop_assert!(!ca.dominates(&ca.clone()));
    }

    /// Shifting every completed time down (speeding everything up) can
    /// never lose a goal that was satisfied.
    #[test]
    fn speedup_preserves_goal(times in times_strategy(), factor in 1.0f64..100.0) {
        let goal = Goal::from_steps(vec![(10.0, 0.1), (100.0, 0.5), (1000.0, 0.9)]);
        let cfc = Cfc::from_values(&times);
        let faster: Vec<f64> = times.iter().map(|t| t / factor).collect();
        let cfc_fast = Cfc::from_values(&faster);
        if goal.satisfied_by(&cfc) {
            prop_assert!(goal.satisfied_by(&cfc_fast));
        }
    }

    /// Histogram counts partition the observations.
    #[test]
    fn histogram_partitions(times in times_strategy()) {
        let h = LogHistogram::new(&times, 0.1, 10_000.0, 2);
        prop_assert_eq!(h.total(), times.len());
        let cum = h.cumulative_fractions();
        prop_assert!(cum.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    /// Ratio histograms count every positive finite ratio exactly once.
    #[test]
    fn ratio_histogram_total(ratios in proptest::collection::vec(0.001f64..1000.0, 0..100)) {
        let h = RatioHistogram::new(&ratios, 4);
        let total: usize = h.counts.iter().sum();
        prop_assert_eq!(total, ratios.len());
    }

    /// Zipf samples stay in range and rank-1 frequency tracks its
    /// theoretical probability.
    #[test]
    fn zipf_in_range(n in 1usize..500, theta in 0.0f64..2.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let z = Zipf::new(n, theta);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&s));
        }
    }

    /// Zipf probabilities are non-increasing in rank.
    #[test]
    fn zipf_monotone(n in 2usize..200, theta in 0.0f64..2.0) {
        let z = Zipf::new(n, theta);
        for r in 1..n {
            prop_assert!(z.probability(r) >= z.probability(r + 1) - 1e-12);
        }
    }
}
