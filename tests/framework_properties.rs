//! Randomized tests for the evaluation framework itself: CFC curves,
//! goals, histograms, and the Zipf sampler. Cases are generated from a
//! fixed-seed PRNG (the offline stand-in for the original proptest
//! strategies).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tab_bench::datagen::Zipf;
use tab_bench::eval::{Cfc, Goal, LogHistogram, RatioHistogram};

/// Elapsed-time vectors: mostly finite values spanning six decades, with
/// ~10% timeouts (`INFINITY`), length 0..200.
fn random_times(rng: &mut StdRng) -> Vec<f64> {
    let n = rng.random_range(0usize..200);
    (0..n)
        .map(|_| {
            if rng.random_bool(0.1) {
                f64::INFINITY
            } else {
                // Log-uniform over [0.01, 10_000).
                let e: f64 = rng.random();
                0.01 * 10f64.powf(e * 6.0)
            }
        })
        .collect()
}

/// CFC is monotone non-decreasing and bounded by the completed
/// fraction.
#[test]
fn cfc_monotone_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xF12A_0001);
    for case in 0..128 {
        let times = random_times(&mut rng);
        let n_xs = rng.random_range(1usize..30);
        let mut xs: Vec<f64> = (0..n_xs)
            .map(|_| 0.001 + rng.random::<f64>() * 1e6)
            .collect();
        let cfc = Cfc::from_values(&times);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = 0.0;
        for &x in &xs {
            let v = cfc.at(x);
            assert!(v >= last - 1e-12, "case {case}: not monotone at {x}");
            assert!(
                v <= cfc.completed_fraction() + 1e-12,
                "case {case}: exceeds completed fraction at {x}"
            );
            last = v;
        }
    }
}

/// Quantile and at() are consistent: at least fraction p completes
/// by quantile(p).
#[test]
fn quantile_consistent() {
    let mut rng = StdRng::seed_from_u64(0xF12A_0002);
    for case in 0..128 {
        let times = random_times(&mut rng);
        let p = 0.01 + rng.random::<f64>() * 0.98;
        let cfc = Cfc::from_values(&times);
        if let Some(t) = cfc.quantile(p) {
            // Evaluate just above t (strict inequality in the definition).
            let v = cfc.at(t * (1.0 + 1e-9) + 1e-12);
            assert!(
                v + 1e-9 >= p.min(cfc.completed_fraction()),
                "case {case}: v={v} p={p}"
            );
        } else {
            assert!(
                p > cfc.completed_fraction() - 1e-9 || cfc.size() == 0,
                "case {case}: quantile missing below completed fraction"
            );
        }
    }
}

/// Dominance is antisymmetric and irreflexive.
#[test]
fn dominance_antisymmetric() {
    let mut rng = StdRng::seed_from_u64(0xF12A_0003);
    for case in 0..128 {
        let ca = Cfc::from_values(&random_times(&mut rng));
        let cb = Cfc::from_values(&random_times(&mut rng));
        assert!(
            !(ca.dominates(&cb) && cb.dominates(&ca)),
            "case {case}: mutual dominance"
        );
        assert!(!ca.dominates(&ca.clone()), "case {case}: self-dominance");
    }
}

/// Shifting every completed time down (speeding everything up) can
/// never lose a goal that was satisfied.
#[test]
fn speedup_preserves_goal() {
    let mut rng = StdRng::seed_from_u64(0xF12A_0004);
    for case in 0..128 {
        let times = random_times(&mut rng);
        let factor = 1.0 + rng.random::<f64>() * 99.0;
        let goal = Goal::from_steps(vec![(10.0, 0.1), (100.0, 0.5), (1000.0, 0.9)]);
        let cfc = Cfc::from_values(&times);
        let faster: Vec<f64> = times.iter().map(|t| t / factor).collect();
        let cfc_fast = Cfc::from_values(&faster);
        if goal.satisfied_by(&cfc) {
            assert!(
                goal.satisfied_by(&cfc_fast),
                "case {case}: speedup by {factor} lost the goal"
            );
        }
    }
}

/// Histogram counts partition the observations.
#[test]
fn histogram_partitions() {
    let mut rng = StdRng::seed_from_u64(0xF12A_0005);
    for case in 0..128 {
        let times = random_times(&mut rng);
        let h = LogHistogram::new(&times, 0.1, 10_000.0, 2);
        assert_eq!(h.total(), times.len(), "case {case}");
        let cum = h.cumulative_fractions();
        assert!(
            cum.windows(2).all(|w| w[0] <= w[1] + 1e-12),
            "case {case}: cumulative fractions not monotone"
        );
    }
}

/// Ratio histograms count every positive finite ratio exactly once.
#[test]
fn ratio_histogram_total() {
    let mut rng = StdRng::seed_from_u64(0xF12A_0006);
    for case in 0..128 {
        let n = rng.random_range(0usize..100);
        let ratios: Vec<f64> = (0..n)
            .map(|_| 0.001 * 10f64.powf(rng.random::<f64>() * 6.0))
            .collect();
        let h = RatioHistogram::new(&ratios, 4);
        let total: usize = h.counts.iter().sum();
        assert_eq!(total, ratios.len(), "case {case}");
    }
}

/// Zipf samples stay in range regardless of size, skew, and seed.
#[test]
fn zipf_in_range() {
    let mut rng = StdRng::seed_from_u64(0xF12A_0007);
    for case in 0..128 {
        let n = rng.random_range(1usize..500);
        let theta = rng.random::<f64>() * 2.0;
        let seed: u64 = rng.random();
        let z = Zipf::new(n, theta);
        let mut zrng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = z.sample(&mut zrng);
            assert!((1..=n).contains(&s), "case {case}: {s} not in 1..={n}");
        }
    }
}

/// Zipf probabilities are non-increasing in rank.
#[test]
fn zipf_monotone() {
    let mut rng = StdRng::seed_from_u64(0xF12A_0008);
    for case in 0..128 {
        let n = rng.random_range(2usize..200);
        let theta = rng.random::<f64>() * 2.0;
        let z = Zipf::new(n, theta);
        for r in 1..n {
            assert!(
                z.probability(r) >= z.probability(r + 1) - 1e-12,
                "case {case}: rank {r} of {n} at theta {theta}"
            );
        }
    }
}
