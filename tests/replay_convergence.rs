//! The trace replay + tracediff layer's contracts (DESIGN.md §11):
//!
//! 1. Round trip: replaying a traced grid run reconstructs exactly the
//!    operator actuals and query outcomes a live instrumented run
//!    observes (at the trace's 3-decimal rendering).
//! 2. Self-diff is empty and line order is irrelevant (parallel workers
//!    interleave lines); a seeded perturbation is detected and named.
//! 3. A torn trace — the `truncate:trace` fault's crash signature — is
//!    refused by replay, never silently half-replayed.

use tab_bench::datagen::{generate_nref, NrefParams};
use tab_bench::engine::{ChargePolicy, Session};
use tab_bench::eval::{build_1c, build_p, run_grid_traced, GridCell};
use tab_bench::families::Family;
use tab_bench::storage::{FaultPlan, FileTraceSink, MemoryTraceSink, Parallelism, Trace};
use tab_bench_harness::replay::{diff, replay_str, DiffOptions, ReplayError};
use tab_bench_harness::trace_summary::summarize;

const TIMEOUT: f64 = 500.0;

/// A small two-cell grid (P and 1C over NREF2J) traced to memory,
/// returning the trace text.
fn traced_grid_text(threads: usize) -> String {
    let db = generate_nref(NrefParams {
        proteins: 400,
        seed: 7,
    });
    let p = build_p(&db, "NREF");
    let c1 = build_1c(&db, "NREF");
    let w: Vec<_> = Family::Nref2J.enumerate(&db).into_iter().take(6).collect();
    let sink = MemoryTraceSink::new();
    let cells = [
        GridCell {
            family: "NREF2J",
            db: &db,
            built: &p,
            workload: &w,
            timeout_units: TIMEOUT,
            query_par: Parallelism::new(2),
            morsel_rows: 64,
            buffer_pages: 0,
            charge: ChargePolicy::Observed,
            pager: None,
        },
        GridCell {
            family: "NREF2J",
            db: &db,
            built: &c1,
            workload: &w,
            timeout_units: TIMEOUT,
            query_par: Parallelism::new(2),
            morsel_rows: 64,
            buffer_pages: 0,
            charge: ChargePolicy::Observed,
            pager: None,
        },
    ];
    run_grid_traced(&cells, Parallelism::new(threads), Trace::to(&sink));
    sink.lines().join("\n") + "\n"
}

#[test]
fn replay_round_trips_live_instrumented_actuals() {
    let text = traced_grid_text(2);
    let replay = replay_str(&text).expect("clean trace replays");
    assert_eq!(replay.skipped, 0);

    let db = generate_nref(NrefParams {
        proteins: 400,
        seed: 7,
    });
    let w: Vec<_> = Family::Nref2J.enumerate(&db).into_iter().take(6).collect();
    for built in [build_p(&db, "NREF"), build_1c(&db, "NREF")] {
        let key = ("NREF2J".to_string(), built.config.name.clone());
        let cell = replay.cells.get(&key).unwrap_or_else(|| {
            panic!("cell {key:?} missing; have {:?}", replay.cells.keys());
        });
        assert_eq!(cell.queries.len(), w.len());
        let session = Session::new(&db, &built);
        for (qi, q) in w.iter().enumerate() {
            let (result, acts) = session.run_instrumented(q, Some(TIMEOUT)).expect("run");
            let rq = &cell.queries[&(qi as u64)];
            // Plan shape: the full label sequence, even past a timeout
            // cutoff (labels come from the plan, actuals from execution).
            let labels = result.plan.op_labels();
            assert_eq!(
                rq.plan_shape(),
                labels.iter().map(String::as_str).collect::<Vec<_>>(),
                "{key:?} q{qi}"
            );
            // Per-operator actuals at the trace's 3-decimal rendering.
            for (op, act) in acts.iter().enumerate() {
                let ro = &rq.ops[&(op as u64)];
                assert_eq!(ro.rows_in, Some(act.rows_in), "{key:?} q{qi} op{op}");
                assert_eq!(ro.rows_out, Some(act.rows_out), "{key:?} q{qi} op{op}");
                assert_eq!(ro.probes, Some(act.probes), "{key:?} q{qi} op{op}");
                assert_eq!(
                    format!("{:.3}", ro.units.expect("completed op has units")),
                    format!("{:.3}", act.units),
                    "{key:?} q{qi} op{op} units"
                );
            }
            // Operators past a timeout cutoff carry no actuals.
            for op in acts.len()..labels.len() {
                assert_eq!(rq.ops[&(op as u64)].units, None, "{key:?} q{qi} op{op}");
            }
            // Query outcome and metered total match the live meter.
            let (outcome, units) = match result.outcome {
                tab_bench::engine::Outcome::Done { units, .. } => ("done", units),
                tab_bench::engine::Outcome::Timeout { budget } => ("timeout", budget),
            };
            assert_eq!(rq.outcome, outcome, "{key:?} q{qi}");
            assert_eq!(
                format!("{:.3}", rq.units.expect("query units traced")),
                format!("{units:.3}"),
                "{key:?} q{qi}"
            );
            // The operator slots sum to the meter total for completed
            // queries (within the 3-decimal rendering granularity).
            if outcome == "done" {
                assert!(
                    (rq.op_units() - units).abs() < 1e-2 * acts.len() as f64,
                    "{key:?} q{qi}: op sum {} vs meter {units}",
                    rq.op_units()
                );
            }
        }
    }
}

#[test]
fn self_diff_is_clean_and_seeded_perturbations_are_named() {
    let text = traced_grid_text(2);
    let golden = replay_str(&text).expect("replay");

    // Self-diff: clean at zero tolerance.
    assert!(diff(&golden, &golden, DiffOptions::default()).is_empty());

    // Thread-count / line-order invariance: a 1-thread trace of the
    // same grid is a line permutation and diffs clean.
    let fresh = replay_str(&traced_grid_text(1)).expect("replay");
    let findings = diff(&golden, &fresh, DiffOptions::default());
    assert!(findings.is_empty(), "{findings:?}");

    // Seeded plan-shape perturbation: rename an operator label.
    let perturbed = text.replacen("SeqScan(", "SneakScan(", 1);
    assert_ne!(perturbed, text, "trace must contain a SeqScan");
    let bad = replay_str(&perturbed).expect("replay");
    let findings = diff(&golden, &bad, DiffOptions::default());
    assert!(!findings.is_empty());
    let f = findings
        .iter()
        .find(|f| f.kind == "plan_shape")
        .expect("plan_shape finding");
    assert_eq!(f.family.as_deref(), Some("NREF2J"));
    assert!(f.config.is_some() && f.query.is_some());
    assert!(f.detail.contains("SneakScan"), "{f}");

    // Seeded actuals perturbation: bump one probe count.
    let perturbed = text.replacen("\"probes\":0,", "\"probes\":7,", 1);
    assert_ne!(perturbed, text);
    let bad = replay_str(&perturbed).expect("replay");
    let findings = diff(&golden, &bad, DiffOptions { tolerance: 1e-6 });
    assert!(findings.iter().any(|f| f.kind == "probes"), "{findings:?}");
}

#[test]
fn truncate_trace_fault_yields_torn_trace_that_replay_refuses() {
    let dir = std::env::temp_dir().join(format!("tab_replay_torn_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("trace.jsonl");
    let plan = FaultPlan::parse("truncate:trace:3").expect("spec");
    let sink = FileTraceSink::create_with_faults(&path, &plan).expect("create");
    let trace = Trace::to(&sink);
    for i in 0..6 {
        trace.emit(|| {
            tab_bench::storage::TraceEvent::new("query")
                .str("family", "F")
                .str("config", "P")
                .int("query", i)
                .str("outcome", "done")
                .num("units", 1.0)
        });
    }
    // The sink refuses to publish; the torn bytes stay at the staging
    // path — exactly what a crashed writer leaves behind.
    sink.finish().expect_err("torn trace must not publish");
    assert!(!path.exists());
    let staging = dir.join("trace.jsonl.tmp");
    let torn = std::fs::read_to_string(&staging).expect("staging bytes");
    assert!(!torn.ends_with('\n'), "tail must be torn: {torn:?}");

    // Replay refuses the torn document outright...
    assert_eq!(replay_str(&torn), Err(ReplayError::Torn));
    // ...while the summary tool reports the damage instead of silently
    // summarizing half a run.
    let summary = summarize(&torn);
    assert!(summary.contains("WARNING"), "{summary}");
    assert!(summary.contains("torn tail"), "{summary}");

    std::fs::remove_dir_all(&dir).ok();
}
