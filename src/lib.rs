//! Umbrella crate re-exporting the public API of the `tab-bench` workspace.
//!
//! See the individual crates for details:
//! - [`tab_storage`]: storage engine substrate
//! - [`tab_sqlq`]: SQL-subset parser
//! - [`tab_engine`]: optimizer + executor + what-if interface
//! - [`tab_datagen`]: NREF and TPC-H data generators
//! - [`tab_families`]: query-family templates and sampling
//! - [`tab_advisor`]: configuration recommenders and baselines
//! - [`tab_core`]: the evaluation framework (CFC curves, goals, ratios)
//! - [`tab_server`]: concurrent serving front end (tab-wire-v1)

pub use tab_advisor as advisor;
pub use tab_core as eval;
pub use tab_datagen as datagen;
pub use tab_engine as engine;
pub use tab_families as families;
pub use tab_server as server;
pub use tab_sqlq as sqlq;
pub use tab_storage as storage;
